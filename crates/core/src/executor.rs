//! The shared-corpus pipeline executor: a channel-based worker pool
//! replacing the old thread-per-campaign manager (§5's "multiple RTL
//! simulation instances in parallel").
//!
//! # Architecture
//!
//! An [`Orchestrator`] owns the [`Corpus`], the scheduling RNG, the
//! running-average mutation-gain threshold and the exact global coverage;
//! [`Worker`] threads own the simulators. Work flows in *rounds*, and how
//! a round's slots are partitioned and claimed is pluggable — see the
//! [`crate::scheduler`] module for the [`crate::scheduler::Scheduler`]
//! trait (fixed round-robin batches vs. deterministic work stealing) and
//! the [`crate::scheduler::SeedPolicy`] trait (energy decay vs.
//! favoured-quota corpus picks). Under the default round-robin scheduler:
//!
//! 1. The orchestrator plans a batch of iteration slots per worker,
//!    consulting the seed policy (energy-weighted retained seeds vs.
//!    fresh exploration) for each slot, and ships each worker its batch
//!    together with the current gain threshold and the coverage points
//!    discovered globally since the worker's last batch. (Under the
//!    work-stealing scheduler the whole round is instead pre-drawn into
//!    one shared claim queue — slots become mutually independent, idle
//!    workers claim the next slot instead of waiting behind a slow
//!    sibling, and commit order still makes the campaign deterministic.)
//! 2. Each worker folds the broadcast delta into its local *view* of the
//!    global coverage, then runs the three-phase pipeline for its slots.
//!    Every observation fans out through [`RecordingCoverage`]: into the
//!    worker's private `observed` matrix (for the exactness invariant)
//!    and — when fresh against the view — into the outcome's recorded
//!    delta and the live [`SharedCoverage`] union (concurrent,
//!    lock-striped, exact). Mutation-gain feedback reads only the view,
//!    so worker decisions never race on shared state. The *canonical*
//!    union is the orchestrator's deterministic replay below; the shared
//!    union is the live, lock-free-readable view of the same set (progress
//!    monitoring, future work-stealing donors) and a runtime cross-check
//!    that the two accounting paths agree.
//! 3. Workers flush one batched result message per round — outcomes plus
//!    their post-round RNG stream position and observed-matrix delta, so
//!    the orchestrator mirrors every worker's full stream state. The
//!    orchestrator folds outcomes back in global slot order: stats, the
//!    per-iteration exact coverage curve, bug dedup, gain-threshold
//!    samples and corpus retention all replay deterministically.
//!
//! The consequence is the property the old end-of-run merge could not
//! offer: `run(cfg, opts, workers, iters, seed)` is **deterministic for a
//! fixed worker count** (thread timing only changes who commits a shared
//! point first, which nothing reads back), and its final coverage is the
//! **exact union** of what the workers observed — never the pointwise sum
//! the old `CampaignStats::merge` approximated.
//!
//! # Checkpointing and resume
//!
//! Because the orchestrator mirrors every piece of worker state, the
//! campaign serialises at any round boundary into a
//! [`CampaignSnapshot`]: corpus, global coverage, gain threshold,
//! scheduler RNG position and per-worker `(RNG position, iteration
//! count, observed matrix)`. At a round boundary each worker's coverage
//! view coincides with the global union (the round-start delta broadcast
//! converges them), so restoring `view = global` is exact, and a run
//! resumed via [`Orchestrator::resume_from`] replays the remaining
//! rounds **bit-identically** to one that never stopped — same curve,
//! same bugs, same corpus, same per-worker accounting (asserted by
//! `tests/persist.rs` and the CI resume smoke). [`Orchestrator::
//! snapshot_every`] + [`Orchestrator::snapshot_path`] write periodic
//! atomic checkpoints; [`Orchestrator::halt_after`] stops gracefully at
//! the next round boundary, emulating a planned interruption.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dejavuzz_ift::{CoverageMatrix, CoveragePoint, IftMode, RecordingCoverage, SharedCoverage};
use dejavuzz_uarch::CoreConfig;

use crate::backend::{BackendSpec, SimBackend};
use crate::campaign::{CampaignStats, FuzzerOptions};
use crate::corpus::Corpus;
use crate::gen::{Seed, WindowType};
use crate::phases::{phase1, phase2, phase3};
use crate::scheduler::{
    PlanCtx, PlannedSlot, PolicySpec, RoundPlan, SchedulerSpec, SeedPolicy, SlotFeedback,
};
use crate::snapshot::{CampaignSnapshot, ResumeError, WorkerState};

/// Iteration slots shipped to a worker per round. Large enough to
/// amortise the channel round-trip, small enough that corpus feedback and
/// the gain threshold stay fresh.
pub const DEFAULT_BATCH: usize = 4;

/// The running-average mutation-gain threshold of §4.2.2, shared across
/// all workers of a pool.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct GainAverage {
    pub avg: f64,
    pub samples: usize,
}

impl GainAverage {
    /// Folds one sample into the running average.
    pub fn push(&mut self, gain: f64) {
        self.samples += 1;
        self.avg += (gain - self.avg) / self.samples as f64;
    }
}

/// Everything one pipeline iteration produced, flushed to the
/// orchestrator in per-round batches.
#[derive(Clone, Debug)]
pub(crate) struct IterationOutcome {
    /// Global iteration index.
    pub slot: usize,
    /// Logical worker stream this slot is accounted to (the physical
    /// worker under [`crate::scheduler::RoundRobin`]; the planned stream
    /// under [`crate::scheduler::WorkStealing`], independent of which
    /// thread claimed the slot).
    pub stream: usize,
    /// Wall-clock the iteration took, for scheduling models and
    /// throughput reporting only — never fed back into decisions.
    pub elapsed_nanos: u64,
    /// The executed seed (after fresh generation and window mutations).
    pub seed: Seed,
    pub window_type: WindowType,
    pub triggered: bool,
    pub to: usize,
    pub eto: usize,
    pub sim_runs: usize,
    pub sim_cycles: u64,
    /// Per-mutation-attempt coverage gains, in execution order (the
    /// orchestrator replays these into the global threshold).
    pub gains: Vec<f64>,
    /// Coverage gain of the selected attempt (corpus retention energy).
    pub final_gain: usize,
    /// Points fresh against the worker's view, in observation order.
    pub fresh_points: Vec<CoveragePoint>,
    /// Points fresh against the worker's lifetime `observed` matrix: the
    /// delta the orchestrator replays into its per-worker mirror (which
    /// is what snapshots persist).
    pub observed_fresh: Vec<CoveragePoint>,
    pub bugs: Vec<crate::report::BugReport>,
    /// A backend failure that aborted this iteration
    /// ([`crate::backend::BackendError`], stringified for the channel).
    /// The iteration still counts; the campaign keeps running.
    pub error: Option<String>,
}

/// Models one round's wall-clock on `workers` dedicated cores from the
/// measured per-slot costs: fixed per-stream chunks for round robin (the
/// round ends when the slowest chunk does), greedy claim-order list
/// scheduling for work stealing (each slot goes to the earliest-free
/// core). Purely a reporting model — scheduling decisions never read it.
fn round_makespan(outcomes: &[IterationOutcome], workers: usize, stealing: bool) -> u64 {
    let mut clocks = vec![0u64; workers];
    for o in outcomes {
        let core = if stealing {
            // Greedy: the earliest-free core claims the next slot.
            (0..workers)
                .min_by_key(|&w| clocks[w])
                .expect("workers >= 1")
        } else {
            o.stream
        };
        clocks[core] += o.elapsed_nanos;
    }
    clocks.into_iter().max().unwrap_or(0)
}

/// One three-phase pipeline iteration. Shared by [`Worker`] and the
/// single-worker [`crate::Campaign`] façade. Dyn-dispatched on the
/// backend: one virtual call per *simulation*, noise against the
/// simulation itself (measured by the `backends` Criterion group).
#[allow(clippy::too_many_arguments)] // the iteration's full context, spelled out
pub(crate) fn run_iteration(
    backend: &mut dyn SimBackend,
    opts: &FuzzerOptions,
    slot: usize,
    scheduled: Option<Seed>,
    rng: &mut StdRng,
    view: &mut CoverageMatrix,
    mut observed: Option<&mut CoverageMatrix>,
    shared: Option<&SharedCoverage>,
    gain: &mut GainAverage,
) -> IterationOutcome {
    let mut seed = scheduled.unwrap_or_else(|| {
        let window_type = WindowType::ALL[rng.gen_range(0..WindowType::ALL.len())];
        Seed::new(window_type, rng.gen())
    });
    let mut out = IterationOutcome {
        slot,
        stream: 0,
        elapsed_nanos: 0,
        seed: seed.clone(),
        window_type: seed.window_type,
        triggered: false,
        to: 0,
        eto: 0,
        sim_runs: 0,
        sim_cycles: 0,
        gains: Vec::new(),
        final_gain: 0,
        fresh_points: Vec::new(),
        observed_fresh: Vec::new(),
        bugs: Vec::new(),
        error: None,
    };

    let p1 = match phase1(backend, &seed, &opts.phases) {
        Ok(p1) => p1,
        Err(e) => {
            out.error = Some(e.to_string());
            return out;
        }
    };
    out.sim_runs += p1.sim_runs;
    if !p1.triggered {
        return out;
    }
    out.triggered = true;
    out.to = p1.to;
    out.eto = p1.eto;

    // Phase 2 with coverage feedback: mutate the window section while the
    // gain stays below the shared running average.
    let track_observed = observed.is_some();
    let mut best = None;
    for attempt in 0..=opts.mutation_attempts {
        let mut sink = RecordingCoverage {
            view: &mut *view,
            recorded: &mut out.fresh_points,
            observed: observed.as_deref_mut(),
            observed_recorded: track_observed.then_some(&mut out.observed_fresh),
            shared,
        };
        let p2 = match phase2(backend, &seed, &p1, &mut sink, &opts.phases) {
            Ok(p2) => p2,
            Err(e) => {
                out.error = Some(e.to_string());
                return out;
            }
        };
        out.sim_runs += 1;
        out.sim_cycles += p2.run.total_cycles.0;
        let g = p2.coverage_gain as f64;
        let below_avg = g < gain.avg;
        let propagated = p2.taints_increased;
        gain.push(g);
        out.gains.push(g);
        out.final_gain = p2.coverage_gain;
        best = Some(p2);
        if !opts.coverage_feedback {
            break; // DejaVuzz⁻ takes whatever the first roll produced
        }
        if propagated && !below_avg {
            break;
        }
        if attempt < opts.mutation_attempts {
            seed = seed.mutate();
        }
    }
    let p2 = best.expect("at least one phase-2 attempt ran");
    out.seed = seed;

    // Phase 3 only for cases that accessed and propagated the secret.
    if p2.taints_increased || opts.phases.mode == IftMode::Base {
        match phase3(backend, &p1, &p2, slot, &opts.phases) {
            Ok(p3) => {
                out.sim_runs += 1;
                out.bugs = p3.leaks;
            }
            Err(e) => out.error = Some(e.to_string()),
        }
    }
    out
}

/// Folds an outcome's counters into campaign stats (curve, bugs, gain and
/// corpus handling stay with the caller, which knows the global ordering).
pub(crate) fn fold_outcome(stats: &mut CampaignStats, o: &IterationOutcome) {
    stats.iterations += 1;
    stats.sim_runs += o.sim_runs;
    stats.sim_cycles += o.sim_cycles;
    if o.error.is_some() {
        stats.failed_runs += 1;
    }
    let e = stats.windows.entry(o.window_type).or_default();
    e.attempted += 1;
    if o.triggered {
        e.triggered += 1;
        e.to_sum += o.to;
        e.eto_sum += o.eto;
    }
    for b in &o.bugs {
        if stats.first_bug_iteration.is_none() {
            stats.first_bug_iteration = Some(o.slot);
        }
        if !stats.bugs.iter().any(|x| x.dedup_key() == b.dedup_key()) {
            stats.bugs.push(b.clone());
        }
    }
}

/// A round's worth of fixed-batch work for one worker
/// ([`crate::scheduler::RoundPlan::Batches`]).
struct WorkBatch {
    items: Vec<crate::scheduler::WorkItem>,
    /// Round-start global gain threshold.
    avg: f64,
    samples: usize,
    /// Globally fresh points discovered since this worker's last batch.
    delta: Vec<CoveragePoint>,
}

/// The shared claim queue of a work-stealing round: pre-drawn slots,
/// claimed in index order by whichever worker is idle.
struct StealQueue {
    slots: Vec<PlannedSlot>,
    next: AtomicUsize,
}

/// A work-stealing round as shipped to every worker
/// ([`crate::scheduler::RoundPlan::Queue`]).
struct StealRound {
    queue: Arc<StealQueue>,
    /// Round-start global gain threshold (per-slot frozen).
    avg: f64,
    samples: usize,
    /// Globally fresh points discovered since this worker's last round.
    delta: Vec<CoveragePoint>,
}

enum ToWorker {
    Batch(WorkBatch),
    Steal(StealRound),
    Stop,
}

/// One round's results from one worker: the outcomes plus the stream
/// state the orchestrator mirrors for snapshots.
struct RoundReply {
    worker: usize,
    outcomes: Vec<IterationOutcome>,
    /// The worker's RNG position after finishing the round. `None` for
    /// work-stealing rounds, where workers never draw (the orchestrator's
    /// plan-time mirrors are authoritative).
    rng: Option<[u64; 4]>,
}

/// A worker's end-of-run accounting.
#[derive(Clone, Debug)]
pub struct WorkerSummary {
    /// Worker index within the pool.
    pub worker: usize,
    /// Iterations this worker executed (including, on resumed runs, the
    /// iterations it executed before the snapshot).
    pub iterations: usize,
    /// Every coverage point this worker itself observed (the union of
    /// these matrices across workers is exactly the pool's final
    /// coverage — asserted by the pipeline tests).
    pub observed: CoverageMatrix,
}

/// A pipeline worker: owns its simulator backend, its RNG stream and its
/// deterministic view of the global coverage.
struct Worker {
    id: usize,
    backend: Box<dyn SimBackend>,
    opts: FuzzerOptions,
    rng: StdRng,
    view: CoverageMatrix,
    observed: CoverageMatrix,
    shared: Arc<SharedCoverage>,
}

impl Worker {
    fn run(mut self, rx: mpsc::Receiver<ToWorker>, tx: mpsc::Sender<RoundReply>) {
        while let Ok(msg) = rx.recv() {
            let reply = match msg {
                ToWorker::Stop => return,
                ToWorker::Batch(b) => self.run_batch(b),
                ToWorker::Steal(r) => self.run_steal(r),
            };
            if tx.send(reply).is_err() {
                return; // orchestrator went away
            }
        }
    }

    /// One fixed-batch round: the classic chained protocol — this
    /// worker's RNG stream, its long-lived coverage view and its in-round
    /// gain samples thread through the batch's slots in order.
    fn run_batch(&mut self, batch: WorkBatch) -> RoundReply {
        for p in &batch.delta {
            self.view.insert(*p);
        }
        // The worker's threshold starts from the global round-start
        // average and folds in its own in-round samples; the
        // orchestrator recomputes the exact global sequence afterwards.
        let mut gain = GainAverage {
            avg: batch.avg,
            samples: batch.samples,
        };
        let mut outcomes = Vec::with_capacity(batch.items.len());
        for item in batch.items {
            let start = Instant::now();
            let mut out = run_iteration(
                self.backend.as_mut(),
                &self.opts,
                item.slot,
                item.scheduled,
                &mut self.rng,
                &mut self.view,
                Some(&mut self.observed),
                Some(&self.shared),
                &mut gain,
            );
            out.stream = self.id;
            out.elapsed_nanos = start.elapsed().as_nanos() as u64;
            outcomes.push(out);
        }
        RoundReply {
            worker: self.id,
            outcomes,
            rng: Some(self.rng.state()),
        }
    }

    /// One work-stealing round: claim pre-drawn slots from the shared
    /// queue until it drains. Every slot runs against a private copy of
    /// the round-start view and a per-slot gain threshold, so its
    /// outcome is independent of what any concurrent slot — on this
    /// worker or another — is doing (see the `scheduler` module docs for
    /// the determinism argument).
    fn run_steal(&mut self, round: StealRound) -> RoundReply {
        for p in &round.delta {
            self.view.insert(*p);
        }
        let mut outcomes = Vec::new();
        loop {
            let claim = round.queue.next.fetch_add(1, Ordering::Relaxed);
            let Some(item) = round.queue.slots.get(claim) else {
                break;
            };
            let mut slot_view = self.view.clone();
            // A fresh per-slot observed matrix: `observed_fresh` then
            // carries the slot's full distinct point set, which the
            // orchestrator replays into the *logical* stream's mirror
            // (physical claim attribution is timing-dependent and must
            // not leak into any persisted or reported state).
            let mut slot_observed = CoverageMatrix::new();
            let mut gain = GainAverage {
                avg: round.avg,
                samples: round.samples,
            };
            let start = Instant::now();
            let mut out = run_iteration(
                self.backend.as_mut(),
                &self.opts,
                item.slot,
                Some(item.seed.clone()),
                &mut self.rng, // never drawn from: the seed is pre-drawn
                &mut slot_view,
                Some(&mut slot_observed),
                Some(&self.shared),
                &mut gain,
            );
            out.stream = item.stream;
            out.elapsed_nanos = start.elapsed().as_nanos() as u64;
            outcomes.push(out);
        }
        RoundReply {
            worker: self.id,
            outcomes,
            rng: None,
        }
    }
}

/// Results of a pool run.
#[derive(Clone, Debug)]
pub struct ExecutorReport {
    /// Merged campaign stats with the *exact* global coverage curve.
    pub stats: CampaignStats,
    /// The final global coverage (union of all observations).
    pub coverage: CoverageMatrix,
    /// Final point count of the concurrent [`SharedCoverage`] — always
    /// equal to `coverage.points()`; reported separately so tests can
    /// assert the two accounting paths agree.
    pub shared_points: usize,
    /// Per-worker accounting.
    pub workers: Vec<WorkerSummary>,
    /// Seeds the corpus retained over the run.
    pub corpus_retained: usize,
    /// Seeds the corpus evicted for capacity.
    pub corpus_evicted: usize,
    /// Sum of per-iteration wall-clock across all workers (the run's
    /// total simulation work).
    pub busy_nanos: u64,
    /// Modelled wall-clock of the run on `workers` dedicated cores: per
    /// round, the makespan of the scheduler's slot distribution over the
    /// measured per-slot costs (fixed chunks for round robin, greedy
    /// claim order for work stealing). Machine-load-independent — this is
    /// the number the scheduler comparison benches report, since on an
    /// oversubscribed host the wall clock cannot show barrier idling.
    pub modelled_makespan_nanos: u64,
}

/// The orchestrator's mutable mid-run state: everything a
/// [`CampaignSnapshot`] captures and a resume restores.
struct Session {
    corpus: Corpus,
    policy: Box<dyn SeedPolicy>,
    sched_rng: StdRng,
    gain: GainAverage,
    global: CoverageMatrix,
    stats: CampaignStats,
    worker_rngs: Vec<[u64; 4]>,
    worker_iterations: Vec<usize>,
    worker_observed: Vec<CoverageMatrix>,
}

/// The pool coordinator. See the module docs for the round protocol.
#[derive(Clone, Debug)]
pub struct Orchestrator {
    backend: BackendSpec,
    opts: FuzzerOptions,
    workers: usize,
    seed: u64,
    batch: usize,
    scheduler: SchedulerSpec,
    policy: PolicySpec,
    corpus_capacity: usize,
    corpus_exploit: f64,
    shard_id: u32,
    snapshot_every: usize,
    snapshot_path: Option<PathBuf>,
    snapshot_keep: usize,
    halt_after: Option<usize>,
    resume: Option<Box<CampaignSnapshot>>,
}

impl Orchestrator {
    /// A new pool over the behavioural backend — the thin compatibility
    /// constructor for `CoreConfig`-positional call sites; prefer
    /// [`Orchestrator::with_backend`]. `workers` is clamped to at
    /// least 1.
    pub fn new(cfg: CoreConfig, opts: FuzzerOptions, workers: usize, seed: u64) -> Self {
        Self::with_backend(BackendSpec::Behavioural(cfg), opts, workers, seed)
    }

    /// A new pool configuration over any backend; each worker thread
    /// builds its own simulator from the spec. `workers` is clamped to at
    /// least 1.
    pub fn with_backend(
        backend: BackendSpec,
        opts: FuzzerOptions,
        workers: usize,
        seed: u64,
    ) -> Self {
        Orchestrator {
            backend,
            opts,
            workers: workers.max(1),
            seed,
            batch: DEFAULT_BATCH,
            scheduler: SchedulerSpec::default(),
            policy: PolicySpec::default(),
            corpus_capacity: crate::corpus::DEFAULT_CAPACITY,
            corpus_exploit: crate::corpus::EXPLOIT_PROBABILITY,
            shard_id: 0,
            snapshot_every: 0,
            snapshot_path: None,
            snapshot_keep: 0,
            halt_after: None,
            resume: None,
        }
    }

    /// Overrides the per-round batch size (clamped to at least 1).
    ///
    /// Batch size is part of a campaign's replay identity — and, for the
    /// work-stealing scheduler, the chunk grain of the stream mapping: at
    /// `batch == 1` the two schedulers are bit-identical (see the
    /// [`crate::scheduler`] docs).
    pub fn batch_size(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }

    /// Selects the slot scheduler (default
    /// [`SchedulerSpec::RoundRobin`]).
    pub fn scheduler(mut self, scheduler: SchedulerSpec) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Selects the corpus seed policy (default
    /// [`PolicySpec::EnergyDecay`]).
    pub fn seed_policy(mut self, policy: PolicySpec) -> Self {
        self.policy = policy;
        self
    }

    /// Keeps the last `keep` *periodic* checkpoints as rotated
    /// `<path>.<iterations>` siblings instead of overwriting one file,
    /// pruning older rounds after each successful atomic write (0 — the
    /// default — keeps the single-file overwrite behaviour). The
    /// end-of-run checkpoint always lands on the plain path either way.
    pub fn snapshot_keep(mut self, keep: usize) -> Self {
        self.snapshot_keep = keep;
        self
    }

    /// Overrides the corpus capacity.
    pub fn corpus_capacity(mut self, capacity: usize) -> Self {
        self.corpus_capacity = capacity.max(1);
        self
    }

    /// Overrides the corpus exploit probability; `0.0` disables corpus
    /// scheduling so every iteration samples a fresh uniform seed
    /// (measurements like Table 3 need unskewed per-window-type counts).
    ///
    /// # Panics
    ///
    /// Panics if `p` is NaN or outside `[0, 1]` (same contract as
    /// [`Corpus::with_exploit_probability`]) — an out-of-range
    /// probability would silently skew `schedule()` instead of failing
    /// the misconfiguration loudly.
    pub fn corpus_exploit_probability(mut self, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "exploit probability must be in [0, 1], got {p}"
        );
        self.corpus_exploit = p;
        self
    }

    /// Tags snapshots from this campaign with a shard id (multi-machine
    /// campaigns give each machine a distinct id; `dejavuzz-merge` keys
    /// reports by it).
    pub fn shard_id(mut self, shard: u32) -> Self {
        self.shard_id = shard;
        self
    }

    /// Writes a checkpoint every `rounds` rounds (0 disables periodic
    /// checkpoints; the end-of-run snapshot is still written when a
    /// [`Orchestrator::snapshot_path`] is set).
    pub fn snapshot_every(mut self, rounds: usize) -> Self {
        self.snapshot_every = rounds;
        self
    }

    /// Checkpoint destination. Each write is atomic (write-rename), so a
    /// crash mid-checkpoint leaves the previous snapshot intact.
    pub fn snapshot_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.snapshot_path = Some(path.into());
        self
    }

    /// Halts the run gracefully at the first round boundary where at
    /// least `iterations` iterations have completed — the controlled
    /// form of an interruption, used with checkpointing to exercise
    /// stop/resume workflows. The run's total-iteration target is
    /// unchanged, so slot scheduling (and therefore the resumed
    /// continuation) stays bit-identical to an uninterrupted run.
    pub fn halt_after(mut self, iterations: usize) -> Self {
        self.halt_after = Some(iterations);
        self
    }

    /// Restores a campaign from a snapshot: the next
    /// [`Orchestrator::run`] continues where the snapshot stopped,
    /// bit-identically to a run that was never interrupted.
    ///
    /// The snapshot's geometry (`workers`, `seed`, `batch`, `shard_id`)
    /// and its scheduling configuration (scheduler, seed policy) are
    /// *adopted* — they are part of the campaign's replay identity. The
    /// backend label and campaign options must match what this
    /// orchestrator was constructed with; mismatches return a
    /// [`ResumeError`] instead of silently mixing two different
    /// experiments.
    pub fn resume_from(mut self, snapshot: CampaignSnapshot) -> Result<Self, ResumeError> {
        let current = self.backend.label();
        if snapshot.backend != current {
            return Err(ResumeError::BackendMismatch {
                snapshot: snapshot.backend,
                current,
            });
        }
        if snapshot.opts != self.opts {
            return Err(ResumeError::OptionsMismatch);
        }
        self.workers = snapshot.workers;
        self.seed = snapshot.seed;
        self.batch = snapshot.batch;
        self.shard_id = snapshot.shard_id;
        self.scheduler = snapshot.scheduler;
        self.policy = snapshot.policy;
        self.resume = Some(Box::new(snapshot));
        Ok(self)
    }

    /// SplitMix64: decorrelates the per-worker and scheduler RNG streams
    /// from the user seed.
    fn stream_seed(&self, stream: u64) -> u64 {
        let mut z = self.seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Fresh session state, or the snapshot's if this is a resume.
    fn session(&self) -> (Session, usize) {
        if let Some(snap) = &self.resume {
            let s = Session {
                corpus: snap.corpus.clone(),
                policy: self.policy.build(Some(&snap.policy_state)),
                sched_rng: StdRng::from_raw_state(snap.sched_rng),
                gain: GainAverage {
                    avg: snap.gain_avg,
                    samples: snap.gain_samples,
                },
                global: snap.coverage.clone(),
                stats: snap.stats.clone(),
                worker_rngs: snap.worker_states.iter().map(|w| w.rng).collect(),
                worker_iterations: snap.worker_states.iter().map(|w| w.iterations).collect(),
                worker_observed: snap
                    .worker_states
                    .iter()
                    .map(|w| w.observed.clone())
                    .collect(),
            };
            (s, snap.completed)
        } else {
            // Corpus retention/scheduling IS coverage feedback: the
            // DejaVuzz⁻ ablation (coverage_feedback = false) must run
            // without any coverage-driven state, so its corpus explores
            // unconditionally and retains nothing.
            let exploit = if self.opts.coverage_feedback {
                self.corpus_exploit
            } else {
                0.0
            };
            let s = Session {
                corpus: Corpus::new(self.corpus_capacity).with_exploit_probability(exploit),
                policy: self.policy.build(None),
                sched_rng: StdRng::seed_from_u64(self.stream_seed(0)),
                gain: GainAverage::default(),
                global: CoverageMatrix::new(),
                stats: CampaignStats::default(),
                worker_rngs: (0..self.workers)
                    .map(|id| StdRng::seed_from_u64(self.stream_seed(1 + id as u64)).state())
                    .collect(),
                worker_iterations: vec![0; self.workers],
                worker_observed: vec![CoverageMatrix::new(); self.workers],
            };
            (s, 0)
        }
    }

    /// Captures the session at a round boundary.
    fn snapshot_of(&self, s: &Session) -> CampaignSnapshot {
        CampaignSnapshot {
            shard_id: self.shard_id,
            backend: self.backend.label(),
            workers: self.workers,
            seed: self.seed,
            batch: self.batch,
            scheduler: self.scheduler,
            policy: self.policy,
            policy_state: s.policy.state(),
            opts: self.opts,
            completed: s.stats.iterations,
            gain_avg: s.gain.avg,
            gain_samples: s.gain.samples,
            sched_rng: s.sched_rng.state(),
            corpus: s.corpus.clone(),
            coverage: s.global.clone(),
            stats: s.stats.clone(),
            worker_states: (0..self.workers)
                .map(|i| WorkerState {
                    rng: s.worker_rngs[i],
                    iterations: s.worker_iterations[i],
                    observed: s.worker_observed[i].clone(),
                })
                .collect(),
        }
    }

    /// Writes a checkpoint. Periodic checkpoints rotate into
    /// `<path>.<iterations>` siblings when [`Orchestrator::snapshot_keep`]
    /// is set, pruning older rounds only after the new file landed
    /// (atomically), so a multi-day campaign keeps a bounded trail of
    /// resumable round checkpoints instead of one overwritten file or an
    /// unbounded pile.
    fn write_checkpoint(&self, s: &Session, periodic: bool) {
        let Some(path) = &self.snapshot_path else {
            return;
        };
        let snap = self.snapshot_of(s);
        let rotate = periodic && self.snapshot_keep > 0;
        let target = if rotate {
            dejavuzz_persist::rotated_path(path, snap.completed as u64)
        } else {
            path.clone()
        };
        if let Err(e) = snap.save(&target) {
            // A failed checkpoint must not kill a running campaign:
            // warn and fuzz on; the next interval retries.
            eprintln!(
                "dejavuzz: checkpoint write to {} failed: {e}",
                target.display()
            );
            return;
        }
        if rotate {
            if let Err(e) = dejavuzz_persist::prune_rotated(path, self.snapshot_keep) {
                eprintln!(
                    "dejavuzz: pruning rotated checkpoints of {} failed: {e}",
                    path.display()
                );
            }
        }
    }

    /// Runs the pool until `iterations` total campaign iterations have
    /// completed (on resumed runs that *includes* the snapshot's
    /// iterations), returning the report. See the module docs for the
    /// determinism and resume-equivalence contracts.
    pub fn run(&self, iterations: usize) -> ExecutorReport {
        self.run_snapshotting(iterations).0
    }

    /// [`Orchestrator::run`], also returning the end-of-run
    /// [`CampaignSnapshot`] (the state a later [`Orchestrator::
    /// resume_from`] continues from). This is the in-memory
    /// checkpointing path; file-based checkpointing goes through
    /// [`Orchestrator::snapshot_path`].
    pub fn run_snapshotting(&self, iterations: usize) -> (ExecutorReport, CampaignSnapshot) {
        let (mut s, start) = self.session();

        // The live concurrent union starts from the restored global so
        // the cross-check invariant (shared == canonical) spans resumes.
        let shared = Arc::new(SharedCoverage::default());
        for p in s.global.iter() {
            shared.observe_point(*p);
        }

        let (from_tx, from_rx) = mpsc::channel();
        let mut to_workers = Vec::with_capacity(self.workers);
        let mut handles = Vec::with_capacity(self.workers);
        for id in 0..self.workers {
            let (to_tx, to_rx) = mpsc::channel();
            let worker = Worker {
                id,
                backend: self.backend.build(),
                opts: self.opts,
                rng: StdRng::from_raw_state(s.worker_rngs[id]),
                // At a round boundary every worker's view equals the
                // global union (see the module docs), so seeding the view
                // with it restores the exact mid-campaign state.
                view: s.global.clone(),
                observed: s.worker_observed[id].clone(),
                shared: Arc::clone(&shared),
            };
            let from_tx = from_tx.clone();
            handles.push(thread::spawn(move || worker.run(to_rx, from_tx)));
            to_workers.push(to_tx);
        }
        drop(from_tx);

        // Append-only log of globally fresh points; per-worker cursors
        // into it drive the round-start view broadcasts. On resume it
        // starts empty: every worker's view already holds the full
        // restored union, so only post-resume points need broadcasting.
        let mut point_log: Vec<CoveragePoint> = Vec::new();
        let mut synced = vec![0usize; self.workers];
        let halt = self.halt_after.unwrap_or(usize::MAX);
        let feedback = self.opts.coverage_feedback;
        let mut scheduler = self.scheduler.build();
        let mut busy_nanos = 0u64;
        let mut makespan_nanos = 0u64;

        let mut next_slot = start;
        let mut rounds = 0usize;
        while next_slot < iterations && s.stats.iterations < halt {
            let span = scheduler.round_span(self.workers, self.batch, iterations - next_slot);
            let plan = {
                let mut ctx = PlanCtx {
                    corpus: &mut s.corpus,
                    policy: s.policy.as_mut(),
                    sched_rng: &mut s.sched_rng,
                    worker_rngs: &mut s.worker_rngs,
                    workers: self.workers,
                    batch: self.batch,
                };
                scheduler.plan_round(next_slot..next_slot + span, &mut ctx)
            };
            next_slot += span;

            let mut expected = 0;
            let stealing = matches!(plan, RoundPlan::Queue(_));
            match plan {
                RoundPlan::Batches(batches) => {
                    for (w, items) in batches.into_iter().enumerate() {
                        if items.is_empty() {
                            continue;
                        }
                        let delta = point_log[synced[w]..].to_vec();
                        synced[w] = point_log.len();
                        to_workers[w]
                            .send(ToWorker::Batch(WorkBatch {
                                items,
                                avg: s.gain.avg,
                                samples: s.gain.samples,
                                delta,
                            }))
                            .expect("worker hung up mid-run");
                        expected += 1;
                    }
                }
                RoundPlan::Queue(slots) => {
                    let queue = Arc::new(StealQueue {
                        slots,
                        next: AtomicUsize::new(0),
                    });
                    for (w, to_worker) in to_workers.iter().enumerate() {
                        let delta = point_log[synced[w]..].to_vec();
                        synced[w] = point_log.len();
                        to_worker
                            .send(ToWorker::Steal(StealRound {
                                queue: Arc::clone(&queue),
                                avg: s.gain.avg,
                                samples: s.gain.samples,
                                delta,
                            }))
                            .expect("worker hung up mid-run");
                        expected += 1;
                    }
                }
            }

            let mut outcomes = Vec::new();
            for _ in 0..expected {
                let reply: RoundReply = from_rx.recv().expect("worker hung up mid-run");
                if let Some(rng) = reply.rng {
                    s.worker_rngs[reply.worker] = rng;
                }
                outcomes.extend(reply.outcomes);
            }
            // Replay in global slot order: every piece of feedback state
            // (threshold, corpus, curve, worker mirrors) updates
            // deterministically regardless of arrival or claim order.
            outcomes.sort_by_key(|o| o.slot);
            makespan_nanos += round_makespan(&outcomes, self.workers, stealing);
            for o in outcomes {
                busy_nanos += o.elapsed_nanos;
                s.worker_iterations[o.stream] += 1;
                for p in &o.observed_fresh {
                    s.worker_observed[o.stream].insert(*p);
                }
                fold_outcome(&mut s.stats, &o);
                for g in &o.gains {
                    s.gain.push(*g);
                }
                let mut global_fresh = Vec::new();
                for p in &o.fresh_points {
                    if s.global.insert(*p) {
                        point_log.push(*p);
                        global_fresh.push(*p);
                    }
                }
                s.stats.coverage_curve.push(s.global.points());
                if feedback {
                    s.policy.record(
                        &mut s.corpus,
                        &SlotFeedback {
                            seed: &o.seed,
                            window_type: o.window_type,
                            gain: o.final_gain,
                            global_fresh: &global_fresh,
                            cost: o.to as u64,
                        },
                    );
                }
            }

            rounds += 1;
            if self.snapshot_every > 0 && rounds.is_multiple_of(self.snapshot_every) {
                self.write_checkpoint(&s, true);
            }
        }

        for to_worker in &to_workers {
            let _ = to_worker.send(ToWorker::Stop);
        }
        for h in handles {
            h.join().expect("worker panicked");
        }

        // Always leave a final checkpoint behind: a halted run's snapshot
        // is exactly what `--resume` continues from.
        self.write_checkpoint(&s, false);
        let snapshot = self.snapshot_of(&s);

        debug_assert_eq!(shared.points(), s.global.points(), "both unions must agree");
        let workers = (0..self.workers)
            .map(|i| WorkerSummary {
                worker: i,
                iterations: s.worker_iterations[i],
                observed: s.worker_observed[i].clone(),
            })
            .collect();
        let report = ExecutorReport {
            stats: s.stats,
            coverage: s.global,
            shared_points: shared.points(),
            workers,
            corpus_retained: s.corpus.retained(),
            corpus_evicted: s.corpus.evicted(),
            busy_nanos,
            modelled_makespan_nanos: makespan_nanos,
        };
        (report, snapshot)
    }
}

/// Runs `iterations` fuzzing iterations on a pool of `workers` threads
/// sharing one corpus, one gain threshold and one exact coverage union,
/// over the behavioural backend for `cfg`.
///
/// Deterministic for a fixed `(workers, seed)` pair; see the module docs.
pub fn run(
    cfg: CoreConfig,
    opts: FuzzerOptions,
    workers: usize,
    iterations: usize,
    seed: u64,
) -> ExecutorReport {
    Orchestrator::new(cfg, opts, workers, seed).run(iterations)
}

/// [`run`], generalised over the simulation backend.
pub fn run_with_backend(
    backend: BackendSpec,
    opts: FuzzerOptions,
    workers: usize,
    iterations: usize,
    seed: u64,
) -> ExecutorReport {
    Orchestrator::with_backend(backend, opts, workers, seed).run(iterations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dejavuzz_uarch::boom_small;

    #[test]
    fn pool_runs_exactly_the_requested_iterations() {
        let r = run(boom_small(), FuzzerOptions::default(), 3, 10, 7);
        assert_eq!(r.stats.iterations, 10);
        assert_eq!(r.stats.coverage_curve.len(), 10);
        assert_eq!(r.workers.iter().map(|w| w.iterations).sum::<usize>(), 10);
        assert_eq!(r.workers.len(), 3);
    }

    #[test]
    fn curve_is_monotone_and_exact() {
        let r = run(boom_small(), FuzzerOptions::default(), 2, 12, 3);
        assert!(r.stats.coverage_curve.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(r.stats.coverage(), r.coverage.points());
        assert_eq!(r.coverage.points(), r.shared_points);
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let r = run(boom_small(), FuzzerOptions::default(), 0, 4, 1);
        assert_eq!(r.workers.len(), 1);
        assert_eq!(r.stats.iterations, 4);
    }

    #[test]
    fn zero_iterations_is_a_clean_noop() {
        let r = run(boom_small(), FuzzerOptions::default(), 2, 0, 1);
        assert_eq!(r.stats.iterations, 0);
        assert_eq!(r.coverage.points(), 0);
        assert_eq!(r.workers.len(), 2);
    }

    #[test]
    fn gain_average_matches_incremental_mean() {
        let mut g = GainAverage::default();
        for (i, x) in [4.0, 0.0, 8.0].iter().enumerate() {
            g.push(*x);
            assert_eq!(g.samples, i + 1);
        }
        assert!((g.avg - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "exploit probability must be in [0, 1]")]
    fn orchestrator_rejects_out_of_range_exploit_probability() {
        let _ = Orchestrator::new(boom_small(), FuzzerOptions::default(), 1, 1)
            .corpus_exploit_probability(1.01);
    }

    #[test]
    fn halt_after_stops_at_a_round_boundary() {
        let orch = Orchestrator::new(boom_small(), FuzzerOptions::default(), 2, 5).halt_after(3);
        let (report, snap) = orch.run_snapshotting(24);
        // 2 workers x batch 4 = 8 slots per round; the first boundary at
        // or past 3 completed iterations is 8.
        assert_eq!(report.stats.iterations, 8);
        assert_eq!(snap.completed, 8);
        assert_eq!(snap.worker_states.len(), 2);
    }

    #[test]
    fn resume_rejects_backend_and_options_mismatches() {
        let orch = Orchestrator::new(boom_small(), FuzzerOptions::default(), 2, 5);
        let (_, snap) = orch.run_snapshotting(8);

        let other_backend = Orchestrator::with_backend(
            BackendSpec::parse("netlist:small", boom_small()).unwrap(),
            FuzzerOptions::default(),
            2,
            5,
        );
        assert!(matches!(
            other_backend.resume_from(snap.clone()),
            Err(ResumeError::BackendMismatch { .. })
        ));

        let other_opts = Orchestrator::new(boom_small(), FuzzerOptions::dejavuzz_minus(), 2, 5);
        assert_eq!(
            other_opts.resume_from(snap).unwrap_err(),
            ResumeError::OptionsMismatch
        );
    }
}
