//! DejaVuzz — a pre-silicon processor fuzzer for transient execution
//! vulnerabilities (reproduction of Xu et al., ASPLOS 2025).
//!
//! The fuzzer drives the out-of-order core models of `dejavuzz-uarch`
//! through the three-phase workflow of the paper's Figure 5:
//!
//! 1. **Phase 1 — Transient window triggering** ([`phases::phase1`]):
//!    generate a trigger and a dummy window ([`gen`]), *derive* targeted
//!    trigger-training packets from the transient-execution information
//!    (§4.1.1), evaluate triggering from the RoB IO trace, and *reduce*
//!    training by removing one packet at a time (§4.1.2).
//! 2. **Phase 2 — Transient execution exploration** ([`phases::phase2`]):
//!    complete the window with a secret-access block (with optional
//!    MDS-style address masks) and a secret-encoding block, derive window
//!    training, simulate under diffIFT and measure the taint coverage
//!    matrix (§4.2.2) to guide mutation.
//! 3. **Phase 3 — Transient leakage analysis** ([`phases::phase3`]): check
//!    transient-window constant-time execution, sanitize the encode block
//!    (nop it out and diff the taint logs) and run the tainted-sink
//!    liveness analysis (§4.3.2) to report exploitable leakages only.
//!
//! The phases are generic over a pluggable simulation backend
//! ([`backend::SimBackend`]): the behavioural out-of-order cores
//! ([`backend::BehaviouralBackend`]) or the DIFT-instrumented netlist
//! interpreter ([`backend::NetlistBackend`] over `dejavuzz-rtl`), selected
//! by a cloneable [`backend::BackendSpec`]. Around the phases sits the
//! fuzzing pipeline of §5:
//!
//! * [`corpus::Corpus`] — interesting-seed retention with energy-based
//!   scheduling (retained seeds re-roll their window section; energy
//!   decays per reschedule),
//! * [`scheduler`] — the pluggable scheduling layer: a
//!   [`scheduler::Scheduler`] decides how iteration slots are
//!   partitioned/claimed across workers per round (fixed round-robin
//!   batches, or deterministic work stealing over a shared claim queue),
//!   and a [`scheduler::SeedPolicy`] decides which corpus entry each slot
//!   mutates (energy decay, or AFL-style favoured culling with
//!   per-window-type quotas),
//! * [`executor`] — the shared-corpus worker pool: an `Orchestrator`
//!   schedules round batches over channels to `Worker` threads that share
//!   one exact concurrent coverage union
//!   ([`dejavuzz_ift::SharedCoverage`]), one global mutation-gain
//!   threshold, and deterministic per-worker RNG streams,
//! * [`campaign::Campaign`] — the thin single-worker façade over the same
//!   per-iteration engine, carrying the ablation variants used in the
//!   evaluation: `DejaVuzz*` (random training, no derivation), `DejaVuzz⁻`
//!   (no coverage feedback) and the no-liveness variant of §6.3,
//! * [`snapshot`] — campaign persistence over the `dejavuzz-persist`
//!   codec: [`snapshot::CampaignSnapshot`] checkpoints a run at any round
//!   boundary (corpus, exact coverage, gain threshold, every RNG stream
//!   position), [`builder::CampaignBuilder::resume`] continues it
//!   bit-identically, and [`snapshot::merge_snapshots`] / the
//!   `dejavuzz-merge` binary union shard snapshots from independent
//!   machines into one report.
//!
//! # Embedding API
//!
//! The crate is an *engine with an API*, not a CLI with internals; three
//! pieces make it embeddable:
//!
//! * [`builder::CampaignBuilder`] — the single typed entry point: one
//!   chainable value configures backend, geometry, scheduling,
//!   checkpointing and resume, and `build()` validates everything up
//!   front into one structured [`builder::BuildError`] (no scattered
//!   panics, no silent clamping);
//! * [`observer::CampaignObserver`] — a typed event stream
//!   (`round_started`, `slot_committed`, `coverage_gained`, `bug_found`,
//!   `snapshot_written`, `campaign_finished`) invoked at the executor's
//!   deterministic commit points; [`observer::TextObserver`] is the CLI's
//!   historical stdout report, [`observer::JsonLinesObserver`] powers
//!   `dejavuzz-fuzz --telemetry json`;
//! * [`registry`] — named registration of custom
//!   scheduler/seed-policy/backend constructors, so user-supplied
//!   implementations are selectable by id *and* survive
//!   snapshot→resume (the snapshot persists the id plus an opaque state
//!   blob); [`registry::list_schedulers`] and friends enumerate
//!   everything selectable (`dejavuzz-fuzz --list-extensions`);
//! * [`scenarios`] (the `dejavuzz-scenarios` crate) — templated
//!   attack-experiment window families: a
//!   [`scenarios::ScenarioTemplate`] contributes a parameterised
//!   secret-access block, an encode-side mutation bias and a sink
//!   classification hook, and enabled families
//!   ([`builder::CampaignBuilder::scenarios`], `--scenarios`) join the
//!   eight built-in [`gen::WindowType`]s in fresh-seed draws, scheduler
//!   quotas, per-family stats and snapshots.
//!
//! # Scenario templates
//!
//! Registering a custom family makes it selectable by id next to the
//! shipped templates (Zenbleed-shaped register-file leak, double-fetch
//! TOCTOU, nested-speculation depth stress, sibling-unit contention):
//!
//! ```
//! use std::sync::Arc;
//! use dejavuzz::builder::CampaignBuilder;
//! use dejavuzz::scenarios::{self, Mechanism, Params, ScenarioTemplate};
//! use dejavuzz_isa::{Instr, LoadOp, Reg};
//!
//! struct PrefetchProbe;
//! impl ScenarioTemplate for PrefetchProbe {
//!     fn family(&self) -> &'static str { "prefetch-probe" }
//!     fn describe(&self) -> &'static str { "prefetcher side-channel probe" }
//!     fn mechanism(&self, _p: &Params) -> Mechanism { Mechanism::BranchMispredict }
//!     fn access_block(&self, _p: &Params, _rng: &mut dejavuzz::rand::rngs::StdRng) -> Vec<Instr> {
//!         // T0 holds the secret address; S0 is the secret destination.
//!         vec![Instr::Load { op: LoadOp::Lb, rd: Reg::S0, rs1: Reg::T0, offset: 0 }]
//!     }
//! }
//!
//! scenarios::register_template(Arc::new(PrefetchProbe)).unwrap();
//! let orch = CampaignBuilder::new()
//!     .seed(7)
//!     .scenarios(&["prefetch-probe", "nested-spec:depth=2"])
//!     .build()
//!     .expect("registered families build");
//! let report = orch.run(12);
//! assert_eq!(report.stats.iterations, 12);
//! ```
//!
//! # Quickstart
//!
//! ```
//! use dejavuzz::builder::CampaignBuilder;
//!
//! // Defaults: behavioural SmallBOOM, 1 worker, round-robin scheduling.
//! let orch = CampaignBuilder::new().seed(42).build().expect("valid config");
//! let report = orch.run(25);
//! assert!(report.stats.iterations == 25);
//! // Windows were triggered and coverage accumulated.
//! assert!(report.stats.coverage() > 0);
//! ```
//!
//! # Worker-process pools
//!
//! `--backend proc:<inner>:<M>` (or [`backend::ProcSpec`] through the
//! builder) runs the inner simulator in `M` crash-isolated
//! `dejavuzz-simd` worker processes ([`procbackend::ProcBackend`] over
//! the `dejavuzz-procsim` transport): a worker segfault or corrupt
//! reply is a per-run [`backend::BackendError::Worker`] — the pool
//! respawns with bounded backoff and the campaign keeps its
//! byte-determinism contract (pool-of-1 equals in-process, pool-of-M
//! equals pool-of-1). Embedders parse the same spec string; the worker
//! binary is discovered next to the current executable or pinned via
//! `DEJAVUZZ_SIMD_BIN`:
//!
//! ```no_run
//! use dejavuzz::builder::CampaignBuilder;
//! use dejavuzz::BackendSpec;
//! use dejavuzz_uarch::boom_small;
//!
//! let spec = BackendSpec::parse("proc:netlist:small:4", boom_small())
//!     .expect("a valid pool spec");
//! let orch = CampaignBuilder::new()
//!     .backend(spec)
//!     .workers(4)
//!     .seed(42)
//!     .build() // spawns + handshakes the pool; missing binary fails here
//!     .expect("worker pool started");
//! let report = orch.run(100);
//! assert_eq!(report.stats.iterations, 100);
//! ```

/// The (vendored) `rand` crate, re-exported because trait signatures in
/// the embedding API name its types (`StdRng` in
/// [`scheduler::SeedPolicy::schedule`]): custom implementations outside
/// this workspace must be able to spell them without depending on the
/// vendored crate directly.
pub use rand;

/// The scenario-template library (the `dejavuzz-scenarios` crate),
/// re-exported so embedders can register custom
/// [`scenarios::ScenarioTemplate`]s without naming a second dependency.
pub use dejavuzz_scenarios as scenarios;

pub mod backend;
pub mod builder;
pub mod campaign;
pub mod corpus;
pub mod executor;
pub mod gen;
pub mod gossip;
pub mod metrics;
pub mod observer;
pub mod phases;
pub mod procbackend;
pub mod procproto;
pub mod registry;
pub mod report;
pub mod scheduler;
pub mod snapshot;

pub use backend::{
    BackendError, BackendSpec, BehaviouralBackend, NetlistBackend, ProcSpec, RunOutcome, SimBackend,
};
pub use builder::{BuildError, CampaignBuilder};
pub use campaign::{Campaign, CampaignStats, FuzzerOptions};
pub use corpus::Corpus;
pub use executor::{ExecutorReport, Orchestrator, WorkerSummary};
pub use gen::{Seed, TransientPlan, WindowType};
pub use gossip::{GossipFrame, GossipLink, MultiLink, NullLink, SharedGossipLink};
pub use observer::{
    BugFound, CampaignFinished, CampaignObserver, CoverageGained, JsonLinesObserver,
    PeerDeltaImported, RoundStarted, SeedImported, SlotCommitted, SnapshotWritten, TextObserver,
};
pub use procbackend::ProcBackend;
pub use registry::{BackendCtor, PolicyCtor, RegistryError, SchedulerCtor};
pub use report::{AttackType, BugReport, LeakChannel};
pub use scheduler::{
    EnergyDecay, FavouredQuota, PolicySpec, PolicyState, RoundRobin, Scheduler, SchedulerSpec,
    SeedPolicy, SlotFeedback, WorkStealing,
};
pub use snapshot::{merge_snapshots, CampaignSnapshot, MergeReport, ResumeError, WorkerState};
