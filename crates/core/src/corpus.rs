//! The shared seed corpus: interesting-seed retention and energy-based
//! scheduling for the fuzzing pipeline (§5).
//!
//! The seed fuzzer regenerated a fresh random seed every iteration and
//! threw it away afterwards, so a window that uncovered new taint coverage
//! contributed nothing beyond its own run. The corpus closes that loop:
//! seeds whose Phase-2 exploration gained coverage are *retained*, carry
//! *energy* proportional to their gain, and are rescheduled (as mutations
//! — same trigger configuration, re-rolled window section) with
//! probability proportional to their remaining energy. Energy decays with
//! every reschedule, so a once-interesting seed cannot monopolise the
//! pipeline; capacity eviction drops the lowest-energy entry first.
//!
//! Scheduling draws all randomness from a caller-supplied RNG, so a
//! single-worker [`crate::Campaign`] and the multi-worker
//! [`crate::executor`] (which schedules centrally from the orchestrator)
//! are both exactly reproducible.
//!
//! # Plan-time vs. commit-time reads under the cross-round pipeline
//!
//! Energies (and the retained-entry set) are read at **plan time** —
//! when a scheduler pre-draws a round's slots — and written at **commit
//! time**, when outcomes retire in slot order. Under the barriered
//! executor the two coincide at every round boundary. Under the
//! cross-round steal pipeline (`pipeline_lag >= 1`) they deliberately do
//! not: round `k` is planned after round `k-1` has fully committed but
//! while round `k`'s predecessor may still be executing elsewhere in the
//! pipe, so every energy read a plan makes is *exactly one round* of
//! feedback behind execution — never a torn or interleaving-dependent
//! view. That lag-consistency is what keeps pipelined campaigns
//! deterministic per `(seed, workers, batch, lag)`: the corpus state a
//! plan observes is a pure function of committed rounds, not of worker
//! timing.

use rand::rngs::StdRng;
use rand::Rng;

use crate::gen::Seed;

/// Default number of retained seeds.
pub const DEFAULT_CAPACITY: usize = 256;

/// Probability of scheduling a retained seed instead of generating a
/// fresh one. Exploration-heavy on purpose: the window/trigger space is
/// enormous and retained seeds only re-roll their window section.
pub const EXPLOIT_PROBABILITY: f64 = 0.35;

/// One retained seed plus its scheduling state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CorpusEntry {
    /// The exact seed (including its mutation counter) that produced the
    /// coverage gain.
    pub seed: Seed,
    /// Coverage points the seed gained when it was retained.
    pub gain: usize,
    /// Times this entry has been rescheduled since retention.
    pub schedules: usize,
}

impl CorpusEntry {
    /// Scheduling energy: the retention gain, decayed by every reschedule.
    pub fn energy(&self) -> f64 {
        self.gain as f64 / (1.0 + self.schedules as f64)
    }
}

/// The seed pool. See the module docs.
#[derive(Clone, Debug)]
pub struct Corpus {
    entries: Vec<CorpusEntry>,
    capacity: usize,
    exploit_probability: f64,
    retained: usize,
    evicted: usize,
    /// Cached sum of entry energies, maintained incrementally on
    /// retain/decay/evict so [`Corpus::total_energy`] never re-scans the
    /// pool on the scheduling hot path. Floating-point increments can
    /// drift from a fresh scan by a few ulps (the decay update is not
    /// order-preserving), so the cache — not the scan — is the
    /// *semantics* of the scheduling mass: it is what the roulette uses,
    /// it is deterministic for a fixed operation sequence, and campaign
    /// snapshots persist it so resumed runs replay bit-identically.
    energy: f64,
}

/// Equality ignores the energy cache: two corpora with the same entries
/// are the same pool even when their caches took different incremental
/// paths to (almost exactly) the same sum.
impl PartialEq for Corpus {
    fn eq(&self, other: &Self) -> bool {
        self.entries == other.entries
            && self.capacity == other.capacity
            && self.exploit_probability == other.exploit_probability
            && self.retained == other.retained
            && self.evicted == other.evicted
    }
}

impl Default for Corpus {
    fn default() -> Self {
        Corpus::new(DEFAULT_CAPACITY)
    }
}

impl Corpus {
    /// An empty corpus holding at most `capacity` seeds.
    pub fn new(capacity: usize) -> Self {
        Corpus {
            entries: Vec::new(),
            capacity: capacity.max(1),
            exploit_probability: EXPLOIT_PROBABILITY,
            retained: 0,
            evicted: 0,
            energy: 0.0,
        }
    }

    /// Overrides the exploit probability. `0.0` makes every
    /// [`Corpus::schedule`] call explore — uniform fresh sampling, used by
    /// measurements that must not be skewed toward coverage-gaining
    /// lineages (e.g. Table 3's training overheads).
    ///
    /// # Panics
    ///
    /// Panics if `p` is NaN or outside `[0, 1]`. A probability outside the
    /// unit interval has no meaning for [`Corpus::schedule`]'s Bernoulli
    /// draw, and silently clamping it (as an earlier revision did) hides
    /// the caller's bug.
    pub fn with_exploit_probability(mut self, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "exploit probability must be in [0, 1], got {p}"
        );
        self.exploit_probability = p;
        self
    }

    /// The configured capacity (maximum retained seeds).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The configured exploit probability.
    pub fn exploit_probability(&self) -> f64 {
        self.exploit_probability
    }

    /// Rebuilds a corpus from snapshot state, entry order preserved
    /// (scheduling iterates entries in order, so order is part of the
    /// resume-equivalence contract). `energy` is the persisted scheduling
    /// mass; `None` (old snapshots that predate the cache) falls back to
    /// a fresh scan.
    pub(crate) fn restore(
        entries: Vec<CorpusEntry>,
        capacity: usize,
        exploit_probability: f64,
        retained: usize,
        evicted: usize,
        energy: Option<f64>,
    ) -> Self {
        let energy = energy.unwrap_or_else(|| entries.iter().map(|e| e.energy()).sum());
        Corpus {
            entries,
            capacity: capacity.max(1),
            exploit_probability,
            retained,
            evicted,
            energy,
        }
    }

    /// Retained seeds currently in the pool.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been retained yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total seeds ever retained (monotone; eviction does not decrement).
    pub fn retained(&self) -> usize {
        self.retained
    }

    /// Seeds dropped by capacity eviction.
    pub fn evicted(&self) -> usize {
        self.evicted
    }

    /// Sum of entry energies (the scheduling mass). O(1): returns the
    /// incrementally maintained cache, which a debug build cross-checks
    /// against the O(n) scan it replaced.
    pub fn total_energy(&self) -> f64 {
        debug_assert!(
            {
                let scan: f64 = self.entries.iter().map(|e| e.energy()).sum();
                (self.energy - scan).abs() <= 1e-6 * scan.abs().max(1.0)
            },
            "energy cache {} diverged from scan {}",
            self.energy,
            self.entries.iter().map(|e| e.energy()).sum::<f64>(),
        );
        self.energy
    }

    /// The raw cache value, persisted by campaign snapshots so resumed
    /// roulette draws replay against bit-identical scheduling mass.
    /// Public read-only: external persistence tooling (and the snapshot
    /// version-skew tests) re-encode it verbatim.
    pub fn energy_cache(&self) -> f64 {
        self.energy
    }

    /// Restores a persisted cache value (snapshot decode).
    pub(crate) fn set_energy_cache(&mut self, energy: f64) {
        self.energy = energy;
    }

    /// The retained entries, for inspection (and for [`crate::scheduler::
    /// SeedPolicy`] implementations that pick by their own weighting —
    /// pair with [`Corpus::schedule_entry`]).
    pub fn entries(&self) -> &[CorpusEntry] {
        &self.entries
    }

    /// Draws the next seed to run, or `None` when the scheduler chooses
    /// exploration (the caller then generates a fresh random seed).
    ///
    /// A retained pick is returned *mutated*: the trigger configuration
    /// that proved interesting is kept, the window section re-rolls.
    pub fn schedule(&mut self, rng: &mut StdRng) -> Option<Seed> {
        if self.entries.is_empty()
            || self.exploit_probability <= 0.0
            || !rng.gen_bool(self.exploit_probability)
        {
            return None;
        }
        let total = self.total_energy();
        if total <= 0.0 {
            return None;
        }
        // Energy-weighted roulette pick.
        let mut roll = (rng.gen::<u64>() as f64 / u64::MAX as f64) * total;
        let mut pick = self.entries.len() - 1;
        for (i, e) in self.entries.iter().enumerate() {
            roll -= e.energy();
            if roll <= 0.0 {
                pick = i;
                break;
            }
        }
        Some(self.schedule_entry(pick))
    }

    /// Schedules the entry at `index` directly: bumps its reschedule
    /// count (decaying its energy) and returns the mutated seed. This is
    /// the primitive custom [`crate::scheduler::SeedPolicy`]
    /// implementations build on after making their own pick over
    /// [`Corpus::entries`].
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn schedule_entry(&mut self, index: usize) -> Seed {
        let entry = &mut self.entries[index];
        let before = entry.energy();
        entry.schedules += 1;
        self.energy += entry.energy() - before;
        entry.seed.mutate()
    }

    /// Reports an executed seed's coverage gain; retains it when the gain
    /// is positive, evicting the lowest-energy entry on overflow.
    pub fn record(&mut self, seed: &Seed, gain: usize) {
        if gain == 0 {
            return;
        }
        // The same lineage scoring again replaces its entry if the new
        // gain is higher (re-energise), otherwise it is left alone — a
        // duplicate entry would double its scheduling mass.
        if let Some(existing) = self
            .entries
            .iter_mut()
            .find(|e| e.seed.window_type == seed.window_type && e.seed.entropy == seed.entropy)
        {
            if gain > existing.gain {
                let before = existing.energy();
                existing.seed = seed.clone();
                existing.gain = gain;
                existing.schedules = 0;
                self.energy += existing.energy() - before;
            }
            return;
        }
        self.retained += 1;
        self.entries.push(CorpusEntry {
            seed: seed.clone(),
            gain,
            schedules: 0,
        });
        self.energy += self.entries.last().expect("just pushed").energy();
        if self.entries.len() > self.capacity {
            let weakest = self
                .entries
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    a.energy()
                        .partial_cmp(&b.energy())
                        .expect("energy is finite")
                })
                .map(|(i, _)| i)
                .expect("non-empty");
            self.energy -= self.entries[weakest].energy();
            self.entries.swap_remove(weakest);
            self.evicted += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::WindowType;
    use rand::SeedableRng;

    fn seed(e: u64) -> Seed {
        Seed::new(WindowType::BranchMispredict, e)
    }

    #[test]
    fn zero_gain_is_not_retained() {
        let mut c = Corpus::new(8);
        c.record(&seed(1), 0);
        assert!(c.is_empty());
        assert_eq!(c.retained(), 0);
    }

    #[test]
    fn empty_corpus_always_explores() {
        let mut c = Corpus::new(8);
        let mut rng = StdRng::seed_from_u64(1);
        assert!((0..100).all(|_| c.schedule(&mut rng).is_none()));
    }

    #[test]
    fn zero_exploit_probability_disables_scheduling_without_rng_draws() {
        let mut c = Corpus::new(8).with_exploit_probability(0.0);
        c.record(&seed(1), 10);
        let mut rng = StdRng::seed_from_u64(1);
        assert!((0..50).all(|_| c.schedule(&mut rng).is_none()));
        // The disabled scheduler consumes no entropy, so the fresh-seed
        // stream matches a corpus that never retained anything.
        assert_eq!(rng, StdRng::seed_from_u64(1), "no rng draws while disabled");
    }

    #[test]
    fn retained_seeds_are_scheduled_as_mutations() {
        let mut c = Corpus::new(8);
        c.record(&seed(42), 5);
        let mut rng = StdRng::seed_from_u64(1);
        let picked = (0..200)
            .filter_map(|_| c.schedule(&mut rng))
            .collect::<Vec<_>>();
        assert!(
            !picked.is_empty(),
            "exploit probability must fire in 200 draws"
        );
        for s in &picked {
            assert_eq!(s.entropy, 42, "trigger configuration preserved");
            assert!(s.mutation > 0, "window section re-rolled");
        }
        // Exploration still dominates (p = 0.35).
        assert!(
            picked.len() < 150,
            "{} exploit draws out of 200",
            picked.len()
        );
    }

    #[test]
    fn energy_weights_favor_high_gain_seeds() {
        let mut c = Corpus::new(8);
        c.record(&seed(1), 1);
        c.record(&seed(2), 40);
        let mut rng = StdRng::seed_from_u64(7);
        let mut by_entropy = [0usize; 2];
        for _ in 0..2000 {
            if let Some(s) = c.schedule(&mut rng) {
                by_entropy[(s.entropy - 1) as usize] += 1;
            }
        }
        assert!(
            by_entropy[1] > 3 * by_entropy[0],
            "gain-40 seed must dominate gain-1 seed: {by_entropy:?}"
        );
    }

    #[test]
    fn energy_decays_with_reschedules() {
        let e0 = CorpusEntry {
            seed: seed(1),
            gain: 10,
            schedules: 0,
        };
        let e3 = CorpusEntry {
            seed: seed(1),
            gain: 10,
            schedules: 3,
        };
        assert!(e0.energy() > e3.energy());
        assert_eq!(e0.energy(), 10.0);
        assert_eq!(e3.energy(), 2.5);
    }

    #[test]
    fn capacity_evicts_lowest_energy() {
        let mut c = Corpus::new(2);
        c.record(&seed(1), 1); // weakest
        c.record(&seed(2), 10);
        c.record(&seed(3), 5);
        assert_eq!(c.len(), 2);
        assert_eq!(c.evicted(), 1);
        assert!(
            c.entries().iter().all(|e| e.seed.entropy != 1),
            "weakest evicted"
        );
    }

    #[test]
    fn re_recording_same_lineage_reenergises_instead_of_duplicating() {
        let mut c = Corpus::new(8);
        c.record(&seed(5), 3);
        let mutated = seed(5).mutate();
        c.record(&mutated, 9);
        assert_eq!(c.len(), 1, "same lineage keeps one entry");
        assert_eq!(c.entries()[0].gain, 9, "higher gain re-energises");
        c.record(&seed(5), 2);
        assert_eq!(c.entries()[0].gain, 9, "lower gain leaves the entry alone");
    }

    #[test]
    #[should_panic(expected = "exploit probability must be in [0, 1]")]
    fn out_of_range_exploit_probability_panics() {
        let _ = Corpus::new(8).with_exploit_probability(1.5);
    }

    #[test]
    #[should_panic(expected = "exploit probability must be in [0, 1]")]
    fn negative_exploit_probability_panics() {
        let _ = Corpus::new(8).with_exploit_probability(-0.1);
    }

    #[test]
    #[should_panic(expected = "exploit probability must be in [0, 1]")]
    fn nan_exploit_probability_panics() {
        let _ = Corpus::new(8).with_exploit_probability(f64::NAN);
    }

    /// Eviction order is load-bearing for resume equivalence: `record`
    /// uses `swap_remove`, so *which* entry is weakest and *where* the
    /// last entry lands must replay identically from equal inputs —
    /// otherwise a resumed corpus's roulette iteration order diverges.
    #[test]
    fn eviction_order_is_deterministic_under_fixed_seed() {
        let run = || {
            let mut c = Corpus::new(4);
            let mut rng = StdRng::seed_from_u64(0xE71C);
            for e in 0..32u64 {
                let gain = rng.gen_range(1..20usize);
                c.record(&seed(e), gain);
                // Interleave scheduling so energies decay mid-stream.
                let _ = c.schedule(&mut rng);
            }
            (
                c.entries()
                    .iter()
                    .map(|e| (e.seed.clone(), e.gain, e.schedules))
                    .collect::<Vec<_>>(),
                c.retained(),
                c.evicted(),
            )
        };
        let (entries_a, retained_a, evicted_a) = run();
        let (entries_b, retained_b, evicted_b) = run();
        assert_eq!(entries_a, entries_b, "entry order must replay exactly");
        assert_eq!(retained_a, retained_b);
        assert_eq!(evicted_a, evicted_b);
        assert!(evicted_a > 0, "the scenario must actually evict");
    }

    /// The cached scheduling mass must track the scan through every kind
    /// of mutation: retention, re-energising, decay and eviction. (Debug
    /// builds also assert this inside every `total_energy` call; this
    /// test makes the property explicit and release-checkable.)
    #[test]
    fn energy_cache_tracks_scan_through_churn() {
        let mut c = Corpus::new(4);
        let mut rng = StdRng::seed_from_u64(0xCAC4E);
        for e in 0..64u64 {
            c.record(&seed(e % 12), rng.gen_range(1..25usize));
            let _ = c.schedule(&mut rng);
            let scan: f64 = c.entries().iter().map(|en| en.energy()).sum();
            assert!(
                (c.total_energy() - scan).abs() <= 1e-9 * scan.max(1.0),
                "cache {} vs scan {scan} after {e} ops",
                c.total_energy()
            );
        }
        assert!(c.evicted() > 0, "the scenario must exercise eviction");
    }

    #[test]
    fn schedule_entry_decays_and_mutates() {
        let mut c = Corpus::new(8);
        c.record(&seed(3), 10);
        let before = c.total_energy();
        let s = c.schedule_entry(0);
        assert_eq!(s.entropy, 3, "lineage preserved");
        assert!(s.mutation > 0, "window re-rolled");
        assert_eq!(c.entries()[0].schedules, 1);
        assert!(c.total_energy() < before, "decay shrinks the mass");
    }

    #[test]
    fn scheduling_is_deterministic_per_rng_seed() {
        let mut a = Corpus::new(8);
        let mut b = Corpus::new(8);
        for c in [&mut a, &mut b] {
            c.record(&seed(1), 3);
            c.record(&seed(2), 7);
        }
        let mut ra = StdRng::seed_from_u64(9);
        let mut rb = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(a.schedule(&mut ra), b.schedule(&mut rb));
        }
    }
}
