//! The typed wire protocol between [`crate::procbackend::ProcBackend`] and
//! the `dejavuzz-simd` worker binary.
//!
//! `dejavuzz-procsim` moves opaque byte frames; this module gives the
//! bytes meaning. Two message pairs exist:
//!
//! * **Handshake** ([`Hello`] → [`HelloAck`]): sent once per spawned
//!   worker. The hello pins the protocol version, the behavioural core
//!   configuration name and the inner backend spec; the ack echoes the
//!   worker-side backend's identity (`name`/`dut_name`/`supports_taint`)
//!   or a configuration error. The pool layer requires every worker of a
//!   pool — including respawns — to produce byte-identical acks, which
//!   makes the handshake double as a protocol-purity check.
//! * **Run** ([`RunRequest`] → `RunResponse`): one simulation. The
//!   request is a full serialization of [`crate::backend::SimBackend::run`]'s arguments;
//!   the response is its `Result<RunOutcome, BackendError>`. Requests
//!   are pure — the worker holds no state across requests — which is
//!   what makes the pool's respawn-and-retry crash recovery sound.
//!
//! Everything here is hand-rolled free functions over the
//! [`dejavuzz_persist`] codec rather than `Persist` impls: most of the
//! types crossing the wire (`Trace`, `TaintLog`, `SwapPacket`, ...) live
//! in other crates, and the orphan rule keeps their `Persist` impls out
//! of this one. The encodings are deterministic (field order is fixed,
//! no maps), so equal values produce equal bytes — the property the
//! pool-of-M determinism contract and the handshake pinning rely on.

use dejavuzz_ift::{Census, IftMode, SinkReport, TaintLog};
use dejavuzz_isa::asm::Program;
use dejavuzz_persist::{intern, DecodeError, Decoder, Encoder, Persist};
use dejavuzz_swapmem::{PacketKind, SecretPolicy, SwapPacket};
use dejavuzz_uarch::core::TimingEvent;
use dejavuzz_uarch::trace::{RobEvent, Trace};

use crate::backend::{BackendError, RunOutcome};
use crate::gen::TransientPlan;

/// Wire protocol version, checked by the handshake (on top of the frame
/// envelope's own version byte, which guards the *framing*). Bump on any
/// change to the message encodings below — v2: [`crate::gen::
/// WindowType`] gained the variable-length scenario encoding, which
/// rides in every [`TransientPlan`] crossing the pipe.
pub const PROTO_VERSION: u32 = 2;

/// The handshake request: who the embedder is and what it wants served.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Hello {
    /// [`PROTO_VERSION`] of the spawning side.
    pub proto: u32,
    /// Behavioural core configuration name (e.g. `"BOOM"`); the worker
    /// refuses names it cannot reconstruct.
    pub core: String,
    /// The inner backend spec argument (e.g. `"netlist:boom"`).
    pub inner: String,
}

/// The handshake reply: the worker-side backend's identity, or why it
/// could not be built.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HelloAck {
    /// `SimBackend::name()` of the worker's backend.
    pub name: String,
    /// `SimBackend::dut_name()` of the worker's backend.
    pub dut: String,
    /// `SimBackend::supports_taint()` of the worker's backend.
    pub supports_taint: bool,
}

/// One serialized [`SimBackend::run`](crate::backend::SimBackend::run)
/// call.
#[derive(Clone, Debug)]
pub struct RunRequest {
    /// The transient plan.
    pub plan: TransientPlan,
    /// The swap schedule.
    pub schedule: Vec<SwapPacket>,
    /// Taint tracking mode.
    pub mode: IftMode,
    /// Simulation cycle budget.
    pub max_cycles: u64,
}

// ---------------------------------------------------------------------
// Handshake
// ---------------------------------------------------------------------

/// Encodes a [`Hello`] payload.
pub fn encode_hello(hello: &Hello) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.u32(hello.proto);
    enc.str(&hello.core);
    enc.str(&hello.inner);
    enc.into_bytes()
}

/// Decodes a [`Hello`] payload.
pub fn decode_hello(bytes: &[u8]) -> Result<Hello, DecodeError> {
    let mut dec = Decoder::new(bytes);
    let hello = Hello {
        proto: dec.u32()?,
        core: dec.string()?,
        inner: dec.string()?,
    };
    dec.finish()?;
    Ok(hello)
}

/// Encodes a handshake reply: `Ok` with the backend identity, or `Err`
/// with a human-readable refusal.
pub fn encode_hello_ack(ack: &Result<HelloAck, String>) -> Vec<u8> {
    let mut enc = Encoder::new();
    match ack {
        Ok(ack) => {
            enc.u8(0);
            enc.str(&ack.name);
            enc.str(&ack.dut);
            enc.bool(ack.supports_taint);
        }
        Err(msg) => {
            enc.u8(1);
            enc.str(msg);
        }
    }
    enc.into_bytes()
}

/// Decodes a handshake reply.
pub fn decode_hello_ack(bytes: &[u8]) -> Result<Result<HelloAck, String>, DecodeError> {
    let mut dec = Decoder::new(bytes);
    let ack = match dec.u8()? {
        0 => Ok(HelloAck {
            name: dec.string()?,
            dut: dec.string()?,
            supports_taint: dec.bool()?,
        }),
        1 => Err(dec.string()?),
        tag => {
            return Err(DecodeError::InvalidTag {
                what: "HelloAck",
                tag: tag as u32,
            })
        }
    };
    dec.finish()?;
    Ok(ack)
}

// ---------------------------------------------------------------------
// Run request
// ---------------------------------------------------------------------

fn encode_plan(enc: &mut Encoder, plan: &TransientPlan) {
    plan.window_type.encode(enc);
    enc.u64(plan.trigger_addr);
    enc.u64(plan.window_addr);
    enc.usize(plan.window_slots);
    enc.u64(plan.exit_addr);
    enc.bool(plan.uses_mask);
    enc.u8(match plan.secret_policy {
        SecretPolicy::ProtectBeforeTransient => 0,
        SecretPolicy::AlwaysReadable => 1,
    });
}

fn decode_plan(dec: &mut Decoder<'_>) -> Result<TransientPlan, DecodeError> {
    Ok(TransientPlan {
        window_type: Persist::decode(dec)?,
        trigger_addr: dec.u64()?,
        window_addr: dec.u64()?,
        window_slots: dec.usize()?,
        exit_addr: dec.u64()?,
        uses_mask: dec.bool()?,
        secret_policy: match dec.u8()? {
            0 => SecretPolicy::ProtectBeforeTransient,
            1 => SecretPolicy::AlwaysReadable,
            tag => {
                return Err(DecodeError::InvalidTag {
                    what: "SecretPolicy",
                    tag: tag as u32,
                })
            }
        },
    })
}

fn encode_packet(enc: &mut Encoder, packet: &SwapPacket) {
    enc.str(&packet.name);
    enc.u8(match packet.kind {
        PacketKind::WindowTraining => 0,
        PacketKind::TriggerTraining => 1,
        PacketKind::Transient => 2,
    });
    enc.u64(packet.program.base);
    enc.usize(packet.program.words.len());
    for w in &packet.program.words {
        enc.u32(*w);
    }
    enc.u64(packet.entry);
}

fn decode_packet(dec: &mut Decoder<'_>) -> Result<SwapPacket, DecodeError> {
    let name = dec.string()?;
    let kind = match dec.u8()? {
        0 => PacketKind::WindowTraining,
        1 => PacketKind::TriggerTraining,
        2 => PacketKind::Transient,
        tag => {
            return Err(DecodeError::InvalidTag {
                what: "PacketKind",
                tag: tag as u32,
            })
        }
    };
    let base = dec.u64()?;
    let n = dec.len_prefix("Program.words", 4)?;
    let mut words = Vec::with_capacity(n);
    for _ in 0..n {
        words.push(dec.u32()?);
    }
    let entry = dec.u64()?;
    Ok(SwapPacket {
        name,
        kind,
        program: Program { base, words },
        entry,
    })
}

/// Encodes a [`RunRequest`] payload.
pub fn encode_run_request(req: &RunRequest) -> Vec<u8> {
    let mut enc = Encoder::new();
    encode_plan(&mut enc, &req.plan);
    enc.usize(req.schedule.len());
    for p in &req.schedule {
        encode_packet(&mut enc, p);
    }
    req.mode.encode(&mut enc);
    enc.u64(req.max_cycles);
    enc.into_bytes()
}

/// Decodes a [`RunRequest`] payload.
pub fn decode_run_request(bytes: &[u8]) -> Result<RunRequest, DecodeError> {
    let mut dec = Decoder::new(bytes);
    let plan = decode_plan(&mut dec)?;
    let n = dec.len_prefix("RunRequest.schedule", 8)?;
    let mut schedule = Vec::with_capacity(n);
    for _ in 0..n {
        schedule.push(decode_packet(&mut dec)?);
    }
    let mode = IftMode::decode(&mut dec)?;
    let max_cycles = dec.u64()?;
    dec.finish()?;
    Ok(RunRequest {
        plan,
        schedule,
        mode,
        max_cycles,
    })
}

// ---------------------------------------------------------------------
// Run response
// ---------------------------------------------------------------------

fn encode_rob_event(enc: &mut Encoder, e: &RobEvent) {
    match e {
        RobEvent::Enq {
            cycle,
            skew_b,
            idx,
            pc,
            packet,
        } => {
            enc.u8(0);
            enc.u64(*cycle);
            enc.i64(*skew_b);
            enc.usize(*idx);
            enc.u64(*pc);
            enc.usize(*packet);
        }
        RobEvent::Commit { cycle, skew_b, idx } => {
            enc.u8(1);
            enc.u64(*cycle);
            enc.i64(*skew_b);
            enc.usize(*idx);
        }
        RobEvent::Squash {
            cycle,
            skew_b,
            after_idx,
            killed,
            cause,
        } => {
            enc.u8(2);
            enc.u64(*cycle);
            enc.i64(*skew_b);
            enc.usize(*after_idx);
            enc.usize(*killed);
            enc.str(cause);
        }
        RobEvent::Trap {
            cycle,
            skew_b,
            cause,
        } => {
            enc.u8(3);
            enc.u64(*cycle);
            enc.i64(*skew_b);
            enc.str(cause);
        }
    }
}

fn decode_rob_event(dec: &mut Decoder<'_>) -> Result<RobEvent, DecodeError> {
    Ok(match dec.u8()? {
        0 => RobEvent::Enq {
            cycle: dec.u64()?,
            skew_b: dec.i64()?,
            idx: dec.usize()?,
            pc: dec.u64()?,
            packet: dec.usize()?,
        },
        1 => RobEvent::Commit {
            cycle: dec.u64()?,
            skew_b: dec.i64()?,
            idx: dec.usize()?,
        },
        2 => RobEvent::Squash {
            cycle: dec.u64()?,
            skew_b: dec.i64()?,
            after_idx: dec.usize()?,
            killed: dec.usize()?,
            cause: intern(&dec.string()?),
        },
        3 => RobEvent::Trap {
            cycle: dec.u64()?,
            skew_b: dec.i64()?,
            cause: intern(&dec.string()?),
        },
        tag => {
            return Err(DecodeError::InvalidTag {
                what: "RobEvent",
                tag: tag as u32,
            })
        }
    })
}

/// Census cycles repeat the same module hierarchy every simulated cycle,
/// so the taint log is encoded against a per-outcome name dictionary:
/// the distinct module names once, then each cycle's entries as
/// `(name index, tainted, total)`. This is a size *and* time win — the
/// log dominates a reply's bytes, and decoding indexes skips a string
/// allocation per module per cycle on the RPC hot path.
fn census_name_dict(log: &TaintLog) -> Vec<&'static str> {
    let mut names: Vec<&'static str> = Vec::new();
    for (_, census) in log.iter() {
        for m in census.modules() {
            // Linear scan: the vocabulary is the DUT's module list,
            // a few dozen entries at most.
            if !names.contains(&m.module) {
                names.push(m.module);
            }
        }
    }
    names
}

fn encode_census(enc: &mut Encoder, census: &Census, names: &[&'static str]) {
    enc.usize(census.modules().len());
    for m in census.modules() {
        let idx = names
            .iter()
            .position(|n| *n == m.module)
            .expect("dictionary built from this log");
        enc.usize(idx);
        enc.usize(m.tainted);
        enc.usize(m.total);
    }
}

fn decode_census(dec: &mut Decoder<'_>, names: &[&'static str]) -> Result<Census, DecodeError> {
    let n = dec.len_prefix("Census.modules", 8)?;
    let mut census = Census::new();
    for _ in 0..n {
        let idx = dec.usize()?;
        let module = *names.get(idx).ok_or(DecodeError::InvalidTag {
            what: "Census module name index",
            tag: idx as u32,
        })?;
        let tainted = dec.usize()?;
        let total = dec.usize()?;
        census.report_counts(module, tainted, total);
    }
    Ok(census)
}

fn encode_outcome(enc: &mut Encoder, out: &RunOutcome) {
    enc.usize(out.trace.events().len());
    for e in out.trace.events() {
        encode_rob_event(enc, e);
    }
    let names = census_name_dict(&out.taint_log);
    enc.usize(names.len());
    for n in &names {
        enc.str(n);
    }
    enc.usize(out.taint_log.len());
    for c in 0..out.taint_log.len() {
        encode_census(enc, out.taint_log.cycle(c).expect("c < len"), &names);
    }
    enc.usize(out.sinks.len());
    for s in &out.sinks {
        enc.str(s.module);
        enc.str(&s.array);
        enc.usize(s.index);
        enc.u64(s.taint);
        enc.bool(s.live);
    }
    enc.usize(out.timing_events.len());
    for t in &out.timing_events {
        enc.u64(t.cycle);
        enc.str(t.resource);
        enc.u64(t.wait_a);
        enc.u64(t.wait_b);
    }
    enc.u64(out.total_cycles.0);
    enc.u64(out.total_cycles.1);
    enc.usize(out.packets_run);
}

fn decode_outcome(dec: &mut Decoder<'_>) -> Result<RunOutcome, DecodeError> {
    let n = dec.len_prefix("RunOutcome.trace", 8)?;
    let mut trace = Trace::new();
    for _ in 0..n {
        trace.push(decode_rob_event(dec)?);
    }
    let n = dec.len_prefix("RunOutcome.census_names", 8)?;
    let mut names = Vec::with_capacity(n);
    for _ in 0..n {
        names.push(intern(&dec.string()?));
    }
    let n = dec.len_prefix("RunOutcome.taint_log", 8)?;
    let mut taint_log = TaintLog::new();
    for _ in 0..n {
        taint_log.push(decode_census(dec, &names)?);
    }
    let n = dec.len_prefix("RunOutcome.sinks", 8)?;
    let mut sinks = Vec::with_capacity(n);
    for _ in 0..n {
        sinks.push(SinkReport {
            module: intern(&dec.string()?),
            array: dec.string()?,
            index: dec.usize()?,
            taint: dec.u64()?,
            live: dec.bool()?,
        });
    }
    let n = dec.len_prefix("RunOutcome.timing_events", 8)?;
    let mut timing_events = Vec::with_capacity(n);
    for _ in 0..n {
        timing_events.push(TimingEvent {
            cycle: dec.u64()?,
            resource: intern(&dec.string()?),
            wait_a: dec.u64()?,
            wait_b: dec.u64()?,
        });
    }
    let total_cycles = (dec.u64()?, dec.u64()?);
    let packets_run = dec.usize()?;
    Ok(RunOutcome {
        trace,
        taint_log,
        sinks,
        timing_events,
        total_cycles,
        packets_run,
    })
}

fn encode_backend_error(enc: &mut Encoder, e: &BackendError) {
    match e {
        BackendError::InvalidNetlist { cell } => {
            enc.u8(0);
            enc.usize(*cell);
        }
        BackendError::NoSuchInput {
            role,
            index,
            inputs,
        } => {
            enc.u8(1);
            enc.str(role);
            enc.usize(*index);
            enc.usize(*inputs);
        }
        BackendError::Worker { detail } => {
            enc.u8(2);
            enc.str(detail);
        }
    }
}

fn decode_backend_error(dec: &mut Decoder<'_>) -> Result<BackendError, DecodeError> {
    Ok(match dec.u8()? {
        0 => BackendError::InvalidNetlist { cell: dec.usize()? },
        1 => BackendError::NoSuchInput {
            role: intern(&dec.string()?),
            index: dec.usize()?,
            inputs: dec.usize()?,
        },
        2 => BackendError::Worker {
            detail: dec.string()?,
        },
        tag => {
            return Err(DecodeError::InvalidTag {
                what: "BackendError",
                tag: tag as u32,
            })
        }
    })
}

/// Encodes a run reply: the worker backend's `Result`.
pub fn encode_run_response(res: &Result<RunOutcome, BackendError>) -> Vec<u8> {
    let mut enc = Encoder::new();
    match res {
        Ok(out) => {
            enc.u8(0);
            encode_outcome(&mut enc, out);
        }
        Err(e) => {
            enc.u8(1);
            encode_backend_error(&mut enc, e);
        }
    }
    enc.into_bytes()
}

/// Decodes a run reply.
pub fn decode_run_response(bytes: &[u8]) -> Result<Result<RunOutcome, BackendError>, DecodeError> {
    let mut dec = Decoder::new(bytes);
    let res = match dec.u8()? {
        0 => Ok(decode_outcome(&mut dec)?),
        1 => Err(decode_backend_error(&mut dec)?),
        tag => {
            return Err(DecodeError::InvalidTag {
                what: "RunResponse",
                tag: tag as u32,
            })
        }
    };
    dec.finish()?;
    Ok(res)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::WindowType;
    use dejavuzz_uarch::trace::WindowInfo;

    fn sample_request() -> RunRequest {
        RunRequest {
            plan: TransientPlan {
                window_type: WindowType::BranchMispredict,
                trigger_addr: 0x1000,
                window_addr: 0x1010,
                window_slots: 6,
                exit_addr: 0x1040,
                uses_mask: true,
                secret_policy: SecretPolicy::AlwaysReadable,
            },
            schedule: vec![
                SwapPacket {
                    name: "trigger_train_0".into(),
                    kind: PacketKind::TriggerTraining,
                    program: Program {
                        base: 0x2000,
                        words: vec![0x13, 0x6f, 0xdead_beef],
                    },
                    entry: 0x2000,
                },
                SwapPacket {
                    name: "transient".into(),
                    kind: PacketKind::Transient,
                    program: Program {
                        base: 0x1000,
                        words: vec![0x93],
                    },
                    entry: 0x1004,
                },
            ],
            mode: IftMode::DiffIft,
            max_cycles: 4096,
        }
    }

    #[test]
    fn hello_round_trips() {
        let hello = Hello {
            proto: PROTO_VERSION,
            core: "BOOM".into(),
            inner: "netlist:boom".into(),
        };
        let decoded = decode_hello(&encode_hello(&hello)).unwrap();
        assert_eq!(decoded, hello);
    }

    #[test]
    fn hello_ack_round_trips_both_arms() {
        let ok = Ok(HelloAck {
            name: "netlist".into(),
            dut: "synthetic-core".into(),
            supports_taint: true,
        });
        assert_eq!(decode_hello_ack(&encode_hello_ack(&ok)).unwrap(), ok);
        let err: Result<HelloAck, String> = Err("unknown inner backend".into());
        assert_eq!(decode_hello_ack(&encode_hello_ack(&err)).unwrap(), err);
    }

    #[test]
    fn run_request_round_trips() {
        let req = sample_request();
        let decoded = decode_run_request(&encode_run_request(&req)).unwrap();
        assert_eq!(decoded.plan.window_type, req.plan.window_type);
        assert_eq!(decoded.plan.trigger_addr, req.plan.trigger_addr);
        assert_eq!(decoded.plan.window_slots, req.plan.window_slots);
        assert_eq!(decoded.plan.uses_mask, req.plan.uses_mask);
        assert_eq!(decoded.plan.secret_policy, req.plan.secret_policy);
        assert_eq!(decoded.schedule, req.schedule);
        assert_eq!(decoded.mode, req.mode);
        assert_eq!(decoded.max_cycles, req.max_cycles);
    }

    #[test]
    fn run_response_round_trips_an_outcome() {
        let mut trace = Trace::new();
        trace.push(RobEvent::Enq {
            cycle: 1,
            skew_b: 0,
            idx: 0,
            pc: 0x1000,
            packet: 0,
        });
        trace.push(RobEvent::Squash {
            cycle: 5,
            skew_b: -2,
            after_idx: 0,
            killed: 3,
            cause: "branch-mispredict",
        });
        trace.push(RobEvent::Trap {
            cycle: 9,
            skew_b: 1,
            cause: "ecall",
        });
        trace.push(RobEvent::Commit {
            cycle: 10,
            skew_b: 1,
            idx: 0,
        });
        let mut taint_log = TaintLog::new();
        let mut census = Census::new();
        census.report_counts("rob", 3, 16);
        census.report_counts("dcache", 0, 8);
        taint_log.push(census);
        let out = RunOutcome {
            trace,
            taint_log,
            sinks: vec![SinkReport {
                module: "dcache",
                array: "tag".into(),
                index: 4,
                taint: 0xff,
                live: true,
            }],
            timing_events: vec![TimingEvent {
                cycle: 7,
                resource: "dcache-port",
                wait_a: 1,
                wait_b: 3,
            }],
            total_cycles: (128, 130),
            packets_run: 2,
        };
        let decoded = decode_run_response(&encode_run_response(&Ok(out.clone())))
            .unwrap()
            .unwrap();
        assert_eq!(decoded.trace.events(), out.trace.events());
        assert_eq!(decoded.taint_log.len(), out.taint_log.len());
        assert_eq!(
            decoded.taint_log.cycle(0).unwrap().modules(),
            out.taint_log.cycle(0).unwrap().modules()
        );
        assert_eq!(decoded.sinks, out.sinks);
        assert_eq!(decoded.timing_events, out.timing_events);
        assert_eq!(decoded.total_cycles, out.total_cycles);
        assert_eq!(decoded.packets_run, out.packets_run);
        // Interning restores pointer-comparable &'static strs.
        assert_eq!(decoded.sinks[0].module, "dcache");
        let _: Option<WindowInfo> = decoded.window();
    }

    #[test]
    fn run_response_round_trips_every_error() {
        for err in [
            BackendError::InvalidNetlist { cell: 7 },
            BackendError::NoSuchInput {
                role: "trigger",
                index: 9,
                inputs: 4,
            },
            BackendError::Worker {
                detail: "worker exited (signal: 6)".into(),
            },
        ] {
            let decoded = decode_run_response(&encode_run_response(&Err(err.clone()))).unwrap();
            assert_eq!(decoded.unwrap_err(), err);
        }
    }

    #[test]
    fn encoding_is_deterministic() {
        let req = sample_request();
        assert_eq!(encode_run_request(&req), encode_run_request(&req));
    }

    #[test]
    fn garbage_fails_structurally() {
        assert!(decode_run_response(&[9, 9, 9]).is_err());
        assert!(decode_hello_ack(&[]).is_err());
    }
}
