//! The process-pool simulator backend: [`ProcBackend`] forwards
//! [`SimBackend::run`] calls over the [`crate::procproto`] wire protocol
//! to a pool of `dejavuzz-simd` worker processes, and [`serve_stdio`] is
//! the worker side of the same conversation.
//!
//! The split buys two things over an in-process backend:
//!
//! * **Crash isolation.** A simulator that segfaults, gets OOM-killed or
//!   corrupts its own state takes down one worker *process*; the pool
//!   respawns it and retries the request once, and only a repeat failure
//!   surfaces — as a per-run [`BackendError::Worker`], counted in
//!   `CampaignStats::failed_runs`, never as a campaign death.
//! * **M-way scale-out.** One `ProcBackend` value (cheaply cloned per
//!   executor worker thread) multiplexes all callers over `M` worker
//!   processes through `dejavuzz-procsim`'s shared request queue.
//!   Requests are pure — a run's reply is a function of its request
//!   bytes — so out-of-order completion across processes cannot change
//!   any result, and campaign output stays byte-deterministic per
//!   `(seed, workers, batch, lag, pool)`.
//!
//! Note the two levels of "in flight" here: the executor's steal
//! schedulers track *slots*, while the pool tracks *RPCs* — one slot
//! issues many RPCs (phase 1 trigger evaluation, the phase 2 mutation
//! loop, phase 3 sanitization each call [`SimBackend::run`]). The
//! `dejavuzz_pool_in_flight` gauge counts RPCs.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dejavuzz_ift::IftMode;
use dejavuzz_persist::intern;
use dejavuzz_procsim::{read_frame, write_frame, Pool, PoolOptions};
use dejavuzz_swapmem::SwapPacket;
use dejavuzz_telemetry::Timer;
use dejavuzz_uarch::{boom_small, xiangshan_minimal, CoreConfig};

use crate::backend::{BackendError, BackendSpec, ProcSpec, RunOutcome, SimBackend};
use crate::gen::TransientPlan;
use crate::procproto::{
    decode_hello, decode_hello_ack, decode_run_request, decode_run_response, encode_hello,
    encode_hello_ack, encode_run_request, encode_run_response, Hello, HelloAck, RunRequest,
    PROTO_VERSION,
};

/// Overrides worker binary discovery with an explicit path.
pub const WORKER_BIN_ENV: &str = "DEJAVUZZ_SIMD_BIN";

/// Set by the pool (to the respawn ordinal) on respawned workers only.
pub const RESPAWN_ENV: &str = "DEJAVUZZ_SIMD_RESPAWN";

/// Crash injection: abort the worker process instead of answering its
/// N-th run request (per process spawn). For the crash-isolation tests
/// and CI smoke — a real worker never reads this in anger.
pub const ABORT_AFTER_ENV: &str = "DEJAVUZZ_SIMD_ABORT_AFTER";

/// Crash injection modifier: disarm [`ABORT_AFTER_ENV`] when the worker
/// is a respawn ([`RESPAWN_ENV`] set), so exactly the first incarnation
/// crashes and the retried campaign completes.
pub const ABORT_UNLESS_RESPAWN_ENV: &str = "DEJAVUZZ_SIMD_ABORT_UNLESS_RESPAWN";

/// Crash injection: corrupt the worker's N-th run reply frame (flip a
/// payload byte after sealing, so the checksum fails structurally).
pub const CORRUPT_AFTER_ENV: &str = "DEJAVUZZ_SIMD_CORRUPT_AFTER";

/// Locates the `dejavuzz-simd` worker binary: the [`WORKER_BIN_ENV`]
/// override if set (taken verbatim — a bogus value is a spawn error, not
/// a fallback), else a sibling of the current executable, else a sibling
/// of its parent directory (which finds `target/debug/dejavuzz-simd`
/// from a `target/debug/deps/...` test binary).
pub fn worker_binary() -> Option<PathBuf> {
    if let Some(p) = std::env::var_os(WORKER_BIN_ENV) {
        return Some(PathBuf::from(p));
    }
    let exe = std::env::current_exe().ok()?;
    let name = format!("dejavuzz-simd{}", std::env::consts::EXE_SUFFIX);
    let dir = exe.parent()?;
    let sibling = dir.join(&name);
    if sibling.is_file() {
        return Some(sibling);
    }
    let uncle = dir.parent()?.join(&name);
    if uncle.is_file() {
        return Some(uncle);
    }
    None
}

/// The pool-side state every [`ProcBackend`] clone shares: the process
/// pool itself plus the identity the workers reported at handshake.
#[derive(Clone, Debug)]
pub struct ProcShared {
    pool: Arc<Pool>,
    dut: &'static str,
    supports_taint: bool,
    /// Pool respawn total already folded into the process-global
    /// counter; see [`ProcBackend::run`].
    respawns_seen: Arc<AtomicU64>,
    /// Our own active-RPC count, mirrored into the in-flight gauge.
    active: Arc<AtomicU64>,
}

impl ProcShared {
    /// Worker processes respawned over the pool's lifetime.
    pub fn respawns(&self) -> u64 {
        self.pool.respawns()
    }

    /// Worker process count.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }
}

/// Spawns and handshakes the worker pool for `spec`. The error string is
/// the human-readable reason (missing binary, spawn failure, worker
/// refusal), which the builder wraps in `BuildError::ProcPool`.
pub fn spawn_shared(spec: &ProcSpec) -> Result<ProcShared, String> {
    let program = worker_binary().ok_or_else(|| {
        format!(
            "worker binary dejavuzz-simd not found next to {} (set {WORKER_BIN_ENV} to its path)",
            std::env::current_exe()
                .map(|p| p.display().to_string())
                .unwrap_or_else(|_| "the current executable".into())
        )
    })?;
    let hello = Hello {
        proto: PROTO_VERSION,
        core: spec.core.clone(),
        inner: spec.inner_arg.clone(),
    };
    let (pool, ack) = Pool::spawn(
        PoolOptions {
            program,
            args: vec![],
            envs: vec![],
            handshake: encode_hello(&hello),
            respawn_env: Some(RESPAWN_ENV.to_string()),
        },
        spec.pool,
    )
    .map_err(|e| e.to_string())?;
    let ack = decode_hello_ack(&ack)
        .map_err(|e| format!("undecodable handshake reply: {e}"))?
        .map_err(|refusal| format!("worker refused the configuration: {refusal}"))?;
    Ok(ProcShared {
        pool: Arc::new(pool),
        dut: intern(&ack.dut),
        supports_taint: ack.supports_taint,
        respawns_seen: Arc::new(AtomicU64::new(0)),
        active: Arc::new(AtomicU64::new(0)),
    })
}

/// A [`SimBackend`] that simulates by RPC to a shared pool of
/// `dejavuzz-simd` worker processes. Clones share the pool; the executor
/// builds one clone per worker thread exactly as it would build any
/// other backend.
#[derive(Clone, Debug)]
pub struct ProcBackend {
    shared: ProcShared,
}

impl ProcBackend {
    /// Wraps an already-spawned pool (the builder's shared-pool path).
    pub fn from_shared(shared: ProcShared) -> Self {
        ProcBackend { shared }
    }

    /// Spawns a dedicated pool for `spec` and wraps it — the direct
    /// embedding path, equivalent to `BackendSpec::Proc(spec).build()`.
    pub fn spawn(spec: &ProcSpec) -> Result<Self, String> {
        Ok(ProcBackend {
            shared: spawn_shared(spec)?,
        })
    }

    /// The shared pool state (for tests and embedders that want the
    /// respawn count).
    pub fn shared(&self) -> &ProcShared {
        &self.shared
    }
}

impl SimBackend for ProcBackend {
    fn name(&self) -> &'static str {
        "proc"
    }

    fn dut_name(&self) -> &'static str {
        self.shared.dut
    }

    fn supports_taint(&self) -> bool {
        self.shared.supports_taint
    }

    fn run(
        &mut self,
        plan: &TransientPlan,
        schedule: &[SwapPacket],
        mode: IftMode,
        max_cycles: u64,
    ) -> Result<RunOutcome, BackendError> {
        let m = crate::metrics::handles();
        let payload = encode_run_request(&RunRequest {
            plan: plan.clone(),
            schedule: schedule.to_vec(),
            mode,
            max_cycles,
        });
        m.pool_in_flight
            .set(self.shared.active.fetch_add(1, Ordering::Relaxed) + 1);
        let span = Timer::start(&m.pool_rpc_nanos);
        let reply = self.shared.pool.request(payload);
        drop(span);
        m.pool_in_flight
            .set(self.shared.active.fetch_sub(1, Ordering::Relaxed) - 1);
        // Fold the pool's monotonic respawn total into the global
        // counter as a delta, so several pools (or campaign runs) in one
        // process accumulate rather than overwrite.
        let total = self.shared.pool.respawns();
        let seen = self.shared.respawns_seen.swap(total, Ordering::Relaxed);
        if total > seen {
            m.pool_respawns_total.add(total - seen);
        }
        match reply {
            Ok(bytes) => decode_run_response(&bytes).map_err(|e| BackendError::Worker {
                detail: format!("undecodable reply: {e}"),
            })?,
            Err(e) => Err(BackendError::Worker {
                detail: e.to_string(),
            }),
        }
    }
}

fn core_config(name: &str) -> Option<CoreConfig> {
    match name {
        "BOOM" => Some(boom_small()),
        "XiangShan" => Some(xiangshan_minimal()),
        _ => None,
    }
}

fn env_count(var: &str) -> Option<u64> {
    std::env::var(var).ok()?.parse().ok()
}

/// The `dejavuzz-simd` worker side: serve framed requests on
/// stdin/stdout until the embedder closes the pipe. Returns an error
/// string (for exit-code mapping) only when the transport itself breaks;
/// configuration problems are answered in-band as a refusing
/// [`HelloAck`] so the embedder gets a structured diagnosis.
pub fn serve_stdio() -> Result<(), String> {
    let stdin = std::io::stdin();
    let mut input = stdin.lock();
    // Rust's stdout handle is line-buffered: a reply frame would be
    // split into a write syscall per embedded 0x0A byte. Replies are
    // binary, so on unix write the raw descriptor instead (one syscall
    // per frame). ManuallyDrop: fd 1 must not be closed on scope exit.
    #[cfg(unix)]
    let raw_stdout = {
        use std::os::unix::io::FromRawFd;
        std::mem::ManuallyDrop::new(unsafe { std::fs::File::from_raw_fd(1) })
    };
    #[cfg(unix)]
    let mut output = &*raw_stdout;
    #[cfg(not(unix))]
    let stdout = std::io::stdout();
    #[cfg(not(unix))]
    let mut output = stdout.lock();

    // Crash injection (tests/CI only): counts are per process spawn, so
    // "abort on request 3" on a respawned worker counts afresh.
    let respawned = std::env::var_os(RESPAWN_ENV).is_some();
    let disarm = std::env::var_os(ABORT_UNLESS_RESPAWN_ENV).is_some() && respawned;
    let abort_after = if disarm {
        None
    } else {
        env_count(ABORT_AFTER_ENV)
    };
    let corrupt_after = env_count(CORRUPT_AFTER_ENV);

    let hello = match read_frame(&mut input).map_err(|e| e.to_string())? {
        Some(frame) => frame,
        None => return Ok(()), // probed and closed without a handshake
    };
    let mut backend = match handshake(&hello) {
        Ok((ack, backend)) => {
            write_frame(&mut output, &encode_hello_ack(&Ok(ack))).map_err(|e| e.to_string())?;
            backend
        }
        Err(refusal) => {
            // The refusal is the reply; the embedder fails its build
            // with the message and drops (kills) us.
            write_frame(&mut output, &encode_hello_ack(&Err(refusal)))
                .map_err(|e| e.to_string())?;
            return Ok(());
        }
    };

    let mut served: u64 = 0;
    while let Some(frame) = read_frame(&mut input).map_err(|e| e.to_string())? {
        served += 1;
        let response = match decode_run_request(&frame) {
            Ok(req) => backend.run(&req.plan, &req.schedule, req.mode, req.max_cycles),
            // Reply in-band and stay alive: the request/reply framing is
            // still in sync even if one payload was garbage.
            Err(e) => Err(BackendError::Worker {
                detail: format!("worker could not decode the request: {e}"),
            }),
        };
        if abort_after == Some(served) {
            std::process::abort();
        }
        let payload = encode_run_response(&response);
        if corrupt_after == Some(served) {
            use std::io::Write;
            let mut framed = dejavuzz_procsim::seal_frame(&payload);
            let last = framed.len() - 1;
            framed[last] ^= 0xff; // payload byte flip => checksum mismatch
            output
                .write_all(&framed)
                .and_then(|()| output.flush())
                .map_err(|e| e.to_string())?;
        } else {
            write_frame(&mut output, &payload).map_err(|e| e.to_string())?;
        }
    }
    Ok(())
}

/// Validates a [`Hello`] and builds the inner backend it asks for.
fn handshake(frame: &[u8]) -> Result<(HelloAck, Box<dyn SimBackend>), String> {
    let hello = decode_hello(frame).map_err(|e| format!("undecodable hello: {e}"))?;
    if hello.proto != PROTO_VERSION {
        return Err(format!(
            "protocol version mismatch: embedder speaks {}, worker speaks {PROTO_VERSION}",
            hello.proto
        ));
    }
    let cfg = core_config(&hello.core)
        .ok_or_else(|| format!("unknown behavioural core configuration {:?}", hello.core))?;
    if hello.inner.starts_with("proc:") {
        return Err("proc pools do not nest".to_string());
    }
    let spec = BackendSpec::parse(&hello.inner, cfg)?;
    // try_build resolves extensions against *this* process's registry —
    // a stock worker has none registered, so `proc:ext:<id>:M` is
    // refused here with the registry's own diagnosis.
    let backend = spec.try_build().map_err(|e| e.to_string())?;
    Ok((
        HelloAck {
            name: backend.name().to_string(),
            dut: backend.dut_name().to_string(),
            supports_taint: backend.supports_taint(),
        },
        backend,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handshake_refuses_unknown_core_and_inner() {
        let bad_core = encode_hello(&Hello {
            proto: PROTO_VERSION,
            core: "Cortex".into(),
            inner: "netlist:small".into(),
        });
        let err = handshake(&bad_core).unwrap_err();
        assert!(err.contains("unknown behavioural core"), "{err}");

        let bad_inner = encode_hello(&Hello {
            proto: PROTO_VERSION,
            core: "BOOM".into(),
            inner: "bogus".into(),
        });
        let err = handshake(&bad_inner).unwrap_err();
        assert!(err.contains("unknown backend"), "{err}");

        let nested = encode_hello(&Hello {
            proto: PROTO_VERSION,
            core: "BOOM".into(),
            inner: "proc:netlist:small:2".into(),
        });
        let err = handshake(&nested).unwrap_err();
        assert!(err.contains("do not nest"), "{err}");

        let wrong_proto = encode_hello(&Hello {
            proto: PROTO_VERSION + 1,
            core: "BOOM".into(),
            inner: "netlist:small".into(),
        });
        let err = handshake(&wrong_proto).unwrap_err();
        assert!(err.contains("protocol version mismatch"), "{err}");
    }

    #[test]
    fn handshake_reports_backend_identity() {
        let hello = encode_hello(&Hello {
            proto: PROTO_VERSION,
            core: "BOOM".into(),
            inner: "netlist:small".into(),
        });
        let (ack, backend) = handshake(&hello).unwrap();
        assert_eq!(ack.name, "netlist");
        assert_eq!(ack.name, backend.name());
        assert_eq!(ack.dut, backend.dut_name());
        assert_eq!(ack.supports_taint, backend.supports_taint());
    }

    #[test]
    fn missing_worker_binary_is_a_structured_error() {
        // The override is taken verbatim, so pointing it at a
        // nonexistent path must fail the spawn (not fall back to
        // discovery). Env mutation is process-global; the path is
        // so specific no parallel test can be probing it.
        std::env::set_var(WORKER_BIN_ENV, "/nonexistent/dejavuzz-simd-test");
        let spec = ProcSpec {
            inner_arg: "netlist:small".into(),
            inner: Box::new(BackendSpec::parse("netlist:small", boom_small()).unwrap()),
            pool: 1,
            core: "BOOM".into(),
        };
        let err = spawn_shared(&spec).unwrap_err();
        std::env::remove_var(WORKER_BIN_ENV);
        assert!(err.contains("/nonexistent/dejavuzz-simd-test"), "{err}");
    }
}
