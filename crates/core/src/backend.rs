//! Pluggable simulation backends: the seam between the three-phase
//! pipeline and whatever actually simulates a stimulus.
//!
//! The paper's pipeline (Figure 5) is backend-agnostic in principle —
//! DejaVuzz drives RTL simulation of real cores — but the reproduction
//! historically hardwired the phases to the behavioural
//! [`dejavuzz_uarch::core::Core`]. [`SimBackend`] makes the seam a
//! first-class API:
//!
//! * [`BehaviouralBackend`] wraps the out-of-order core models,
//!   bit-for-bit identical to the old direct call (the pipeline
//!   determinism tests of `tests/pipeline.rs` hold unchanged);
//! * [`NetlistBackend`] drives the DIFT-instrumented netlist interpreter
//!   [`dejavuzz_rtl::sim::NetlistSim`] over the `synthetic_core` scales
//!   (or any custom netlist, e.g. the Figure 2 RoB-entry circuit),
//!   mapping [`SwapPacket`] stimulus onto netlist input ports and the
//!   per-cycle [`dejavuzz_ift::Census`] / final
//!   [`dejavuzz_ift::SinkReport`] sweep onto the shared
//!   [`dejavuzz_ift::TaintCoverage`] machinery.
//!
//! Both lower their observations into the backend-neutral [`RunOutcome`],
//! which is all `phases::{phase1, phase2, phase3}` consume. Backends are
//! selected by a cloneable [`BackendSpec`] so the executor can build one
//! simulator instance per worker thread; a misconfigured backend returns
//! a [`BackendError`] from [`SimBackend::run`], which fails that *run*
//! (counted in `CampaignStats::failed_runs`), never the whole campaign.
//!
//! A future external-RTL-simulator-process backend only has to implement
//! [`SimBackend`]; no further pipeline refactor is needed.

use std::fmt;

use dejavuzz_ift::{IftMode, SinkReport, TWord, TaintLog};
use dejavuzz_isa::decode;
use dejavuzz_isa::instr::{Instr, Reg};
use dejavuzz_rtl::examples::{
    rob_entry_circuit, synthetic_core, CoreScale, BOOM_SCALE, SMALL_SCALE, XIANGSHAN_SCALE,
};
use dejavuzz_rtl::ir::Netlist;
use dejavuzz_rtl::sim::NetlistSim;
use dejavuzz_swapmem::{PacketKind, SwapPacket};
use dejavuzz_uarch::core::{Core, RunResult, TimingEvent};
use dejavuzz_uarch::trace::{RobEvent, Trace, WindowInfo};
use dejavuzz_uarch::{boom_small, CoreConfig};

use crate::gen::{TransientPlan, WindowType};
use crate::phases::{build_mem, DEFAULT_SECRET};

/// Why a backend could not simulate a run.
///
/// Errors are *per-run*: the executor records them on the iteration
/// outcome and keeps fuzzing, so one bad configuration (or a transiently
/// broken external simulator, once one exists) cannot take down a
/// campaign. Variants are added as backends need them — an external
/// simulator backend will bring process/protocol errors of its own.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BackendError {
    /// The netlist failed SSA validation; carries the offending cell.
    InvalidNetlist {
        /// Index of the first invalid cell.
        cell: usize,
    },
    /// An I/O mapping names an input port the netlist does not have.
    NoSuchInput {
        /// Which stimulus role was mapped onto the missing port.
        role: &'static str,
        /// The mapped input index.
        index: usize,
        /// Number of input ports the netlist declares.
        inputs: usize,
    },
    /// A worker process of a [`crate::procbackend::ProcBackend`] pool failed this run after
    /// crash recovery was exhausted (the process died twice in a row, or
    /// kept replying with malformed frames).
    Worker {
        /// The transport's diagnosis, including the worker's exit status
        /// when it died.
        detail: String,
    },
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendError::InvalidNetlist { cell } => {
                write!(f, "netlist fails SSA validation at cell {cell}")
            }
            BackendError::NoSuchInput {
                role,
                index,
                inputs,
            } => write!(
                f,
                "stimulus role {role:?} mapped to input {index}, but the netlist has {inputs} input port(s)"
            ),
            BackendError::Worker { detail } => {
                write!(f, "worker process failed: {detail}")
            }
        }
    }
}

impl std::error::Error for BackendError {}

/// Backend-neutral result of one simulation: everything the three phases
/// consume, with no reference to which simulator produced it.
///
/// The behavioural [`RunResult`] lowers losslessly (the conversion is a
/// field move, keeping the old direct-call path bit-for-bit identical);
/// the netlist backend synthesises the trace from its stimulus protocol
/// and takes the taint log / sink sweep straight off the netlist state.
#[derive(Clone, Debug, Default)]
pub struct RunOutcome {
    /// RoB IO trace (window detection, Phase 1 trigger evaluation).
    pub trace: Trace,
    /// Per-cycle taint census (empty in [`IftMode::Base`]).
    pub taint_log: TaintLog,
    /// Final-state tainted-sink sweep with liveness bits.
    pub sinks: Vec<SinkReport>,
    /// Divergent contention observations (empty for backends without a
    /// two-plane timing model).
    pub timing_events: Vec<TimingEvent>,
    /// Total cycles, per plane.
    pub total_cycles: (u64, u64),
    /// Number of packets that ran.
    pub packets_run: usize,
}

impl RunOutcome {
    /// The transient window of the last packet that produced one.
    pub fn window(&self) -> Option<WindowInfo> {
        self.trace.last_window()
    }

    /// The transient window inside a specific packet.
    pub fn window_in_packet(&self, packet: usize) -> Option<WindowInfo> {
        self.trace.window_in_packet(packet)
    }

    /// Phase 3.1: did the variants take different time overall?
    pub fn timing_diverged(&self) -> bool {
        self.total_cycles.0 != self.total_cycles.1
    }

    /// Sinks that are tainted *and* live (§4.3.2 exploitable leakages).
    pub fn exploitable_sinks(&self) -> Vec<&SinkReport> {
        self.sinks.iter().filter(|s| s.exploitable()).collect()
    }

    /// Tainted-but-dead residue (the false-positive class liveness rejects).
    pub fn residue_sinks(&self) -> Vec<&SinkReport> {
        self.sinks.iter().filter(|s| s.residue()).collect()
    }
}

impl From<RunResult> for RunOutcome {
    fn from(r: RunResult) -> Self {
        RunOutcome {
            trace: r.trace,
            taint_log: r.taint_log,
            sinks: r.sinks,
            timing_events: r.timing_events,
            total_cycles: r.total_cycles,
            packets_run: r.packets_run,
        }
    }
}

/// A simulation backend the phase pipeline can drive.
///
/// `Send` because the executor builds one backend per worker thread;
/// `Debug` so campaign types holding a boxed backend stay debuggable.
pub trait SimBackend: Send + fmt::Debug {
    /// Backend family name (`"behavioural"`, `"netlist"`).
    fn name(&self) -> &'static str;

    /// Name of the simulated design, used to attribute
    /// [`crate::report::BugReport`]s.
    fn dut_name(&self) -> &'static str;

    /// Whether non-[`IftMode::Base`] modes produce a meaningful taint log
    /// (all in-tree backends do; an external trace-replay backend might
    /// not).
    fn supports_taint(&self) -> bool;

    /// Simulates one schedule under `mode` with a `max_cycles` budget.
    fn run(
        &mut self,
        plan: &TransientPlan,
        schedule: &[SwapPacket],
        mode: IftMode,
        max_cycles: u64,
    ) -> Result<RunOutcome, BackendError>;
}

/// The behavioural backend: the out-of-order core models of
/// `dejavuzz-uarch`, exactly as the phases called them before the seam
/// existed.
#[derive(Clone, Debug)]
pub struct BehaviouralBackend {
    cfg: CoreConfig,
}

impl BehaviouralBackend {
    /// A backend over one core configuration.
    pub fn new(cfg: CoreConfig) -> Self {
        BehaviouralBackend { cfg }
    }

    /// The wrapped core configuration.
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }
}

impl SimBackend for BehaviouralBackend {
    fn name(&self) -> &'static str {
        "behavioural"
    }

    fn dut_name(&self) -> &'static str {
        self.cfg.name
    }

    fn supports_taint(&self) -> bool {
        true
    }

    fn run(
        &mut self,
        plan: &TransientPlan,
        schedule: &[SwapPacket],
        mode: IftMode,
        max_cycles: u64,
    ) -> Result<RunOutcome, BackendError> {
        let mut mem = build_mem(plan, schedule, &DEFAULT_SECRET);
        Ok(Core::new(self.cfg, mode).run(&mut mem, max_cycles).into())
    }
}

/// Maps the stimulus protocol's roles onto a netlist's input ports.
///
/// The netlist backend reduces every instruction to three driven roles —
/// a *data* word (secret values enter here), a *control* bit (register /
/// memory write enable, e.g. `enq_valid` or `wen`) and an *index* word
/// (entry selector / write address, e.g. `rob_tail_idx` or `waddr`) —
/// plus auxiliary ports fed derived background words.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NetlistIo {
    /// Data input (secret enqueue / write data).
    pub data: usize,
    /// Control / write-enable input.
    pub control: usize,
    /// Index / address input.
    pub index: usize,
    /// Other inputs, driven with derived (untainted) words.
    pub aux: Vec<usize>,
}

/// Variant-1 plane of the planted secret.
fn secret_a() -> u64 {
    u64::from_le_bytes(DEFAULT_SECRET)
}

/// SplitMix64-style derivation of a deterministic stimulus word from an
/// instruction encoding. No RNG: the executor's determinism guarantee
/// (`same (seed, workers) ⇒ same results`) must hold for every backend.
fn mix(word: u32, salt: u64) -> u64 {
    let mut z = (word as u64 ^ salt).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The netlist backend: drives a [`NetlistSim`] with a stimulus protocol
/// derived from the swap schedule.
///
/// # Stimulus protocol
///
/// The netlist has no instruction decoder, so the backend *interprets*
/// the schedule at the harness level, one cycle per (non-padding)
/// instruction, and synthesises the RoB IO trace the phases analyse:
///
/// * Training packets and the transient packet's prologue drive derived,
///   untainted words (enqueue + commit events).
/// * Whether the transient window triggers is decided from the schedule
///   the way Phase 1 derives it: exception-class windows always trigger;
///   misprediction windows trigger only when a trigger-training packet
///   places the matching control-transfer instruction at the trained
///   address (so training reduction and the DejaVuzz* ablation keep their
///   semantics on this backend).
/// * Inside a triggered window the secret enters: the first load drives
///   `data` with the two-plane secret into index 0 (the access block);
///   stores drive secret-derived tainted data into index 1 (the encode
///   block — a sanitized re-run, whose encode block is `nop`s, leaves
///   index 1 clean, which is exactly what Phase 3's sanitization diff
///   needs). Window instructions enqueue without committing.
/// * The window closes with one *rollback* cycle reproducing Figure 2:
///   `control` and `index` go tainted-but-equal while `data` carries a
///   fresh untainted word — CellIFT's Policy 2 taints every selected
///   register, diffIFT's cross-instance gate keeps them clean — followed
///   by a squash event with the window type's expected cause.
///
/// The per-cycle [`NetlistSim::census`] forms the taint log (coverage),
/// and the final [`NetlistSim::sink_reports`] sweep forms the sinks. The
/// netlist simulator has no two-plane timing model, so `total_cycles` is
/// equal per plane and `timing_events` stays empty (no Phase 3 timing
/// violations — leakage on this backend is found through encoded sinks).
#[derive(Clone, Debug)]
pub struct NetlistBackend {
    dut: &'static str,
    netlist: Netlist,
    io: NetlistIo,
}

impl NetlistBackend {
    /// A backend over an arbitrary netlist with an explicit I/O mapping.
    ///
    /// The mapping is validated lazily at [`SimBackend::run`], so a
    /// misconfiguration fails runs (reported per-iteration) rather than
    /// construction.
    pub fn new(dut: &'static str, netlist: Netlist, io: NetlistIo) -> Self {
        NetlistBackend { dut, netlist, io }
    }

    /// A backend over a [`synthetic_core`] scale: `data`→`wdata`,
    /// `control`→`wen`, `index`→`waddr`, aux→the comb-cloud inputs.
    pub fn synthetic(scale: CoreScale) -> Self {
        NetlistBackend::new(
            scale.name,
            synthetic_core(scale),
            NetlistIo {
                data: 4,
                control: 2,
                index: 3,
                aux: vec![0, 1],
            },
        )
    }

    /// A backend over the Figure 2 RoB-entry circuit: `data`→`enq_uopc`,
    /// `control`→`enq_valid`, `index`→`rob_tail_idx`.
    pub fn rob_entry(entries: usize) -> Self {
        NetlistBackend::new(
            "rob-entry",
            rob_entry_circuit(entries).netlist,
            NetlistIo {
                data: 0,
                control: 1,
                index: 2,
                aux: vec![],
            },
        )
    }

    /// The wrapped netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Decodes the instruction at `addr` in a packet, if it is in range.
    fn instr_at(p: &SwapPacket, addr: u64) -> Option<Instr> {
        if addr < p.program.base || !addr.is_multiple_of(4) {
            return None;
        }
        let i = ((addr - p.program.base) / 4) as usize;
        p.program.words.get(i).map(|&w| decode(w))
    }

    /// Whether a training packet trains this plan's trigger: the matching
    /// control-transfer instruction sits at the trained address (derived
    /// trainings always do; DejaVuzz*'s random packets only by luck).
    fn trains(plan: &TransientPlan, p: &SwapPacket) -> bool {
        match plan.window_type.base() {
            WindowType::BranchMispredict => {
                matches!(
                    Self::instr_at(p, plan.trigger_addr),
                    Some(Instr::Branch { .. })
                )
            }
            WindowType::IndirectMispredict => {
                matches!(
                    Self::instr_at(p, plan.trigger_addr),
                    Some(Instr::Jalr { .. })
                )
            }
            WindowType::ReturnMispredict => matches!(
                Self::instr_at(p, plan.window_addr - 4),
                Some(Instr::Jal { rd: Reg::RA, .. })
            ),
            _ => true,
        }
    }

    /// Phase-1 semantics of the protocol: does this schedule open the
    /// transient window?
    fn schedule_triggers(plan: &TransientPlan, schedule: &[SwapPacket]) -> bool {
        if !plan.window_type.is_mispredict() {
            return true; // exceptions/disambiguation need no training
        }
        schedule
            .iter()
            .any(|p| p.kind == PacketKind::TriggerTraining && Self::trains(plan, p))
    }

    /// Drives derived, untainted background stimulus for one instruction.
    fn drive_background(&self, sim: &mut NetlistSim, word: u32, cycle: u64) {
        for (k, &a) in self.io.aux.iter().enumerate() {
            sim.set_input(a, TWord::lit(mix(word, cycle ^ ((k as u64) << 8))));
        }
        sim.set_input(self.io.data, TWord::lit(mix(word, 0xDA7A)));
        sim.set_input(self.io.control, TWord::lit(0));
        sim.set_input(self.io.index, TWord::lit(mix(word, 0x1D) % 8));
    }

    /// Drives one speculative window instruction. Returns whether this
    /// instruction injected the secret (the access block).
    fn drive_window(&self, sim: &mut NetlistSim, instr: Instr, word: u32, injected: &mut bool) {
        for &a in &self.io.aux {
            sim.set_input(a, TWord::lit(mix(word, 0x77)));
        }
        let (sa, sb) = (secret_a(), !secret_a());
        match instr {
            // The first load of the window is the secret access: the
            // two-plane secret enters the design at index 0.
            Instr::Load { .. } | Instr::FLoad { .. } if !*injected => {
                *injected = true;
                sim.set_input(self.io.data, TWord::secret(sa, sb));
                sim.set_input(self.io.control, TWord::lit(1));
                sim.set_input(self.io.index, TWord::lit(0));
            }
            // Encode stores persist secret-derived data at index 1 (kept
            // distinct from the access slot so sanitization can tell the
            // two apart).
            Instr::Store { .. } | Instr::FStore { .. } => {
                let m = mix(word, 0xEC0D);
                sim.set_input(self.io.data, TWord::with_taint(sa ^ m, sb ^ m, u64::MAX));
                sim.set_input(self.io.control, TWord::lit(1));
                sim.set_input(self.io.index, TWord::lit(1));
            }
            _ => {
                sim.set_input(self.io.data, TWord::lit(mix(word, 0xDA7A)));
                sim.set_input(self.io.control, TWord::lit(0));
                sim.set_input(self.io.index, TWord::lit(mix(word, 0x1D) % 8));
            }
        }
    }

    /// Drives the Figure 2 rollback cycle: control signals tainted but
    /// equal across variants, fresh untainted data.
    fn drive_rollback(&self, sim: &mut NetlistSim) {
        for &a in &self.io.aux {
            sim.set_input(a, TWord::lit(0));
        }
        sim.set_input(self.io.data, TWord::lit(0x55));
        sim.set_input(self.io.control, TWord::with_taint(1, 1, 1));
        sim.set_input(self.io.index, TWord::with_taint(2, 2, u64::MAX));
    }
}

impl SimBackend for NetlistBackend {
    fn name(&self) -> &'static str {
        "netlist"
    }

    fn dut_name(&self) -> &'static str {
        self.dut
    }

    fn supports_taint(&self) -> bool {
        true
    }

    fn run(
        &mut self,
        plan: &TransientPlan,
        schedule: &[SwapPacket],
        mode: IftMode,
        max_cycles: u64,
    ) -> Result<RunOutcome, BackendError> {
        // Fail a misconfigured backend per-run, not per-campaign.
        let inputs = self.netlist.input_count();
        for (role, index) in [
            ("data", self.io.data),
            ("control", self.io.control),
            ("index", self.io.index),
        ]
        .into_iter()
        .chain(self.io.aux.iter().map(|&a| ("aux", a)))
        {
            if index >= inputs {
                return Err(BackendError::NoSuchInput {
                    role,
                    index,
                    inputs,
                });
            }
        }
        let mut sim = NetlistSim::try_new(self.netlist.clone(), mode)
            .map_err(|cell| BackendError::InvalidNetlist { cell })?;

        let mut trace = Trace::new();
        let mut taint_log = TaintLog::new();
        let mut cycle: u64 = 0;
        let mut idx: usize = 0;
        let mut packets_run = 0;
        let triggered = Self::schedule_triggers(plan, schedule);
        let win_lo = plan.window_addr;
        let win_hi = plan.window_addr + 4 * plan.window_slots as u64;
        let cause = plan.window_type.expected_cause();

        'packets: for (pi, packet) in schedule.iter().enumerate() {
            packets_run += 1;
            let transient = packet.kind == PacketKind::Transient;
            let mut injected = false;
            let mut window_after_idx = None;
            let mut window_enqueued = 0usize;
            for (wi, &word) in packet.program.words.iter().enumerate() {
                let addr = packet.program.base + 4 * wi as u64;
                let instr = decode(word);
                let in_window = transient && (win_lo..win_hi).contains(&addr);
                // Compress alignment padding outside the window; inside it
                // every slot is a (possibly dummy) speculative instruction.
                if !in_window && instr == Instr::NOP {
                    continue;
                }
                if transient && !triggered && addr >= win_lo {
                    break; // the untrained trigger falls through; the
                           // window body is never fetched
                }
                if cycle >= max_cycles {
                    break 'packets; // budget exhausted: no squash, so the
                                    // run reads as untriggered
                }
                if in_window {
                    if window_after_idx.is_none() {
                        window_after_idx = Some(idx.saturating_sub(1));
                    }
                    self.drive_window(&mut sim, instr, word, &mut injected);
                    trace.push(RobEvent::Enq {
                        cycle,
                        skew_b: 0,
                        idx,
                        pc: addr,
                        packet: pi,
                    });
                    window_enqueued += 1;
                } else {
                    self.drive_background(&mut sim, word, cycle);
                    trace.push(RobEvent::Enq {
                        cycle,
                        skew_b: 0,
                        idx,
                        pc: addr,
                        packet: pi,
                    });
                    trace.push(RobEvent::Commit {
                        cycle,
                        skew_b: 0,
                        idx,
                    });
                }
                idx += 1;
                sim.step();
                if mode != IftMode::Base {
                    taint_log.push(sim.census());
                }
                cycle += 1;
            }
            // Close a triggered window with the rollback + squash.
            if let Some(after_idx) = window_after_idx {
                if window_enqueued > 0 && cycle < max_cycles {
                    self.drive_rollback(&mut sim);
                    sim.step();
                    if mode != IftMode::Base {
                        taint_log.push(sim.census());
                    }
                    trace.push(RobEvent::Squash {
                        cycle,
                        skew_b: 0,
                        after_idx,
                        killed: window_enqueued,
                        cause,
                    });
                    cycle += 1;
                }
            }
        }

        Ok(RunOutcome {
            trace,
            taint_log,
            sinks: sim.sink_reports(),
            timing_events: Vec::new(),
            total_cycles: (cycle, cycle),
            packets_run,
        })
    }
}

/// Cloneable backend configuration: what campaign/executor constructors
/// accept, and what each worker thread builds its own simulator from.
///
/// `Default` is the behavioural SmallBOOM model, so existing
/// `CoreConfig`-positional call sites keep their behaviour through the
/// thin compatibility constructors.
#[derive(Clone, Debug, PartialEq)]
#[allow(clippy::large_enum_variant)] // a handful of specs per campaign; boxing buys nothing
pub enum BackendSpec {
    /// Behavioural out-of-order core model.
    Behavioural(CoreConfig),
    /// DIFT-instrumented netlist interpreter over a synthetic core scale.
    Netlist(CoreScale),
    /// A registered extension backend, by id (labelled `ext:<id>`); see
    /// [`crate::registry::register_backend`]. Snapshots echo the label,
    /// so a campaign run on a custom backend can only be resumed by a
    /// process that registered the same id.
    Extension(String),
    /// A crash-isolated pool of `dejavuzz-simd` worker processes, each
    /// serving the *inner* backend over the framed stdio protocol of
    /// [`crate::procproto`]. Labelled `proc:<inner>:<M>`, so snapshots
    /// echo the pool geometry.
    Proc(ProcSpec),
}

/// Configuration of a [`BackendSpec::Proc`] worker pool.
#[derive(Clone, Debug, PartialEq)]
pub struct ProcSpec {
    /// The inner backend argument as the worker will re-parse it
    /// (e.g. `"netlist:boom"`).
    pub inner_arg: String,
    /// The locally-parsed inner spec (validates the argument up front;
    /// the worker parses `inner_arg` itself and must agree).
    pub inner: Box<BackendSpec>,
    /// Worker process count `M` (>= 1).
    pub pool: usize,
    /// Behavioural core configuration name sent in the handshake, so a
    /// `proc:behavioural:M` worker builds the same core the embedder
    /// would have built in-process.
    pub core: String,
}

impl Default for BackendSpec {
    fn default() -> Self {
        BackendSpec::Behavioural(boom_small())
    }
}

impl BackendSpec {
    /// A behavioural spec.
    pub fn behavioural(cfg: CoreConfig) -> Self {
        BackendSpec::Behavioural(cfg)
    }

    /// A netlist spec over a synthetic core scale.
    pub fn netlist(scale: CoreScale) -> Self {
        BackendSpec::Netlist(scale)
    }

    /// A spec naming a registered extension backend.
    pub fn extension(id: impl Into<String>) -> Self {
        BackendSpec::Extension(id.into())
    }

    /// Parses a `--backend` CLI value: `behavioural` (using
    /// `behavioural_cfg`), `netlist[:small|boom|xiangshan]`, `ext:<id>`
    /// for a registered extension backend, or `proc:<inner>:<M>` for a
    /// worker-process pool of `M` processes each serving `<inner>`.
    pub fn parse(s: &str, behavioural_cfg: CoreConfig) -> Result<Self, String> {
        if let Some(rest) = s.strip_prefix("proc:") {
            let Some((inner_arg, pool_str)) = rest.rsplit_once(':') else {
                return Err(format!(
                    "unknown proc backend {s:?} (expected proc:<inner>:<M>, e.g. proc:netlist:small:4)"
                ));
            };
            let pool: usize = pool_str
                .parse()
                .map_err(|_| format!("invalid proc pool size {pool_str:?} in {s:?}"))?;
            if pool == 0 {
                return Err(format!("proc pool size must be >= 1 in {s:?}"));
            }
            if inner_arg.starts_with("proc:") {
                return Err(format!("proc pools do not nest: {s:?}"));
            }
            let inner = BackendSpec::parse(inner_arg, behavioural_cfg)?;
            return Ok(BackendSpec::Proc(ProcSpec {
                inner_arg: inner_arg.to_string(),
                inner: Box::new(inner),
                pool,
                core: behavioural_cfg.name.to_string(),
            }));
        }
        match s {
            "behavioural" | "behavioral" => Ok(BackendSpec::Behavioural(behavioural_cfg)),
            "netlist" => Ok(BackendSpec::Netlist(SMALL_SCALE)),
            _ => match s.strip_prefix("netlist:") {
                Some("small") => Ok(BackendSpec::Netlist(SMALL_SCALE)),
                Some("boom") => Ok(BackendSpec::Netlist(BOOM_SCALE)),
                Some("xiangshan") => Ok(BackendSpec::Netlist(XIANGSHAN_SCALE)),
                Some(other) => Err(format!(
                    "unknown netlist scale {other:?} (expected small|boom|xiangshan)"
                )),
                None => match s.strip_prefix("ext:") {
                    // Validate against the registry's id rules here, so
                    // a structurally unregistrable id (whitespace,
                    // embedded ':') is diagnosed as invalid rather than
                    // later as "not registered".
                    Some(id) => match crate::registry::validate_id(id) {
                        Ok(()) => Ok(BackendSpec::Extension(id.to_string())),
                        Err(e) => Err(e.to_string()),
                    },
                    None => Err(format!(
                        "unknown backend {s:?} (expected behavioural, netlist:<scale>, ext:<id> or proc:<inner>:<M>)"
                    )),
                },
            },
        }
    }

    /// Human-readable label (`behavioural:BOOM`, `netlist:SynthSmall`,
    /// `ext:<id>`) — also the backend-identity echo campaign snapshots
    /// validate on resume.
    pub fn label(&self) -> String {
        match self {
            BackendSpec::Behavioural(cfg) => format!("behavioural:{}", cfg.name),
            BackendSpec::Netlist(scale) => format!("netlist:{}", scale.name),
            BackendSpec::Extension(id) => format!("ext:{id}"),
            BackendSpec::Proc(spec) => format!("proc:{}:{}", spec.inner_arg, spec.pool),
        }
    }

    /// Builds a fresh backend instance (one per worker thread).
    /// Extensions resolve through the global [`crate::registry`]; the
    /// fallible form is [`BackendSpec::try_build`], which the
    /// [`crate::builder::CampaignBuilder`] uses to validate the
    /// configuration before any campaign work starts.
    ///
    /// # Panics
    ///
    /// Panics if this is an [`BackendSpec::Extension`] whose id is not
    /// registered — go through [`crate::builder::CampaignBuilder`] for a
    /// structured [`crate::builder::BuildError`] instead.
    pub fn build(&self) -> Box<dyn SimBackend> {
        self.try_build().unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`BackendSpec::build`], with unresolvable extensions reported as
    /// a [`crate::builder::BuildError::UnknownBackend`].
    pub fn try_build(&self) -> Result<Box<dyn SimBackend>, crate::builder::BuildError> {
        match self {
            BackendSpec::Behavioural(cfg) => Ok(Box::new(BehaviouralBackend::new(*cfg))),
            BackendSpec::Netlist(scale) => Ok(Box::new(NetlistBackend::synthetic(*scale))),
            BackendSpec::Extension(id) => match crate::registry::backend_ctor(id) {
                Some(ctor) => Ok(ctor()),
                None => Err(crate::builder::BuildError::UnknownBackend { id: id.clone() }),
            },
            // Direct embedding path: a dedicated pool owned by this one
            // backend value. Campaigns built through the
            // `CampaignBuilder` instead spawn one pool at `build()` and
            // share it across all worker threads.
            BackendSpec::Proc(spec) => {
                let shared = crate::procbackend::spawn_shared(spec).map_err(|detail| {
                    crate::builder::BuildError::ProcPool {
                        spec: self.label(),
                        detail,
                    }
                })?;
                Ok(Box::new(crate::procbackend::ProcBackend::from_shared(
                    shared,
                )))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{self, Seed, WindowFill};
    use crate::phases::PhaseOptions;

    #[test]
    fn proc_specs_parse_with_pinned_errors() {
        let spec = BackendSpec::parse("proc:netlist:boom:4", boom_small()).unwrap();
        match &spec {
            BackendSpec::Proc(p) => {
                assert_eq!(p.inner_arg, "netlist:boom");
                assert_eq!(*p.inner, BackendSpec::Netlist(BOOM_SCALE));
                assert_eq!(p.pool, 4);
                assert_eq!(p.core, "BOOM");
            }
            other => panic!("parsed {other:?}"),
        }
        assert_eq!(spec.label(), "proc:netlist:boom:4");

        // The behavioural core config threads through to the inner spec.
        let spec = BackendSpec::parse("proc:behavioural:2", boom_small()).unwrap();
        assert_eq!(spec.label(), "proc:behavioural:2");

        let err = BackendSpec::parse("proc:netlist", boom_small()).unwrap_err();
        assert!(err.contains("expected proc:<inner>:<M>"), "{err}");
        let err = BackendSpec::parse("proc:netlist:boom:0", boom_small()).unwrap_err();
        assert_eq!(
            err,
            "proc pool size must be >= 1 in \"proc:netlist:boom:0\""
        );
        let err = BackendSpec::parse("proc:netlist:boom:x", boom_small()).unwrap_err();
        assert_eq!(
            err,
            "invalid proc pool size \"x\" in \"proc:netlist:boom:x\""
        );
        let err = BackendSpec::parse("proc:bogus:2", boom_small()).unwrap_err();
        assert!(err.contains("unknown backend \"bogus\""), "{err}");
        let err = BackendSpec::parse("proc:proc:netlist:small:2:2", boom_small()).unwrap_err();
        assert_eq!(
            err,
            "proc pools do not nest: \"proc:proc:netlist:small:2:2\""
        );
    }

    fn schedule_for(seed: &Seed) -> (TransientPlan, Vec<SwapPacket>) {
        let plan = gen::plan(seed);
        let mut schedule = gen::derive_trainings(seed, &plan, 1);
        schedule.push(gen::build_transient(&plan, &WindowFill::Dummy));
        (plan, schedule)
    }

    #[test]
    fn behavioural_backend_matches_direct_core_run() {
        let seed = Seed::new(WindowType::MemPageFault, 3);
        let (plan, schedule) = schedule_for(&seed);
        let opts = PhaseOptions::default();
        let mut backend = BehaviouralBackend::new(boom_small());
        let out = backend
            .run(&plan, &schedule, IftMode::DiffIft, opts.max_cycles)
            .unwrap();
        let mut mem = build_mem(&plan, &schedule, &DEFAULT_SECRET);
        let direct: RunOutcome = Core::new(boom_small(), IftMode::DiffIft)
            .run(&mut mem, opts.max_cycles)
            .into();
        assert_eq!(out.total_cycles, direct.total_cycles);
        assert_eq!(out.trace.events(), direct.trace.events());
        assert_eq!(out.taint_log.taint_sums(), direct.taint_log.taint_sums());
        assert_eq!(backend.name(), "behavioural");
        assert_eq!(backend.dut_name(), "BOOM");
        assert!(backend.supports_taint());
    }

    #[test]
    fn netlist_backend_triggers_exception_windows_untrained() {
        let seed = Seed::new(WindowType::MemPageFault, 1);
        let plan = gen::plan(&seed);
        let schedule = vec![gen::build_transient(&plan, &WindowFill::Dummy)];
        let mut backend = NetlistBackend::synthetic(SMALL_SCALE);
        let out = backend
            .run(&plan, &schedule, IftMode::Base, 20_000)
            .unwrap();
        let w = out
            .trace
            .window_in_packet_caused(0, Some(plan.window_type.expected_cause()))
            .expect("window detected");
        assert!(w.triggered());
        assert!(out.taint_log.is_empty(), "Base mode logs no census");
    }

    #[test]
    fn netlist_backend_mispredict_needs_matching_training() {
        let seed = Seed::new(WindowType::BranchMispredict, 5);
        let (plan, schedule) = schedule_for(&seed);
        let mut backend = NetlistBackend::synthetic(SMALL_SCALE);
        let trained = backend
            .run(&plan, &schedule, IftMode::Base, 20_000)
            .unwrap();
        assert!(trained
            .trace
            .window_in_packet_caused(schedule.len() - 1, Some("branch-mispredict"))
            .is_some_and(|w| w.triggered()));
        // Remove every targeted training packet: the window must close.
        let untrained: Vec<SwapPacket> = schedule
            .iter()
            .filter(|p| !NetlistBackend::trains(&plan, p))
            .cloned()
            .collect();
        let out = backend
            .run(&plan, &untrained, IftMode::Base, 20_000)
            .unwrap();
        assert!(out
            .trace
            .window_in_packet_caused(untrained.len() - 1, Some("branch-mispredict"))
            .is_none());
    }

    #[test]
    fn netlist_backend_window_taints_and_sinks() {
        let seed = Seed::new(WindowType::MemPageFault, 2);
        let plan = gen::plan(&seed);
        let body = gen::complete_window(&seed, &plan);
        let schedule = vec![gen::build_transient(&plan, &WindowFill::Body(body.full()))];
        let mut backend = NetlistBackend::synthetic(SMALL_SCALE);
        let out = backend
            .run(&plan, &schedule, IftMode::DiffIft, 20_000)
            .unwrap();
        let w = out.window_in_packet(0).expect("window");
        assert!(out
            .taint_log
            .taint_increased_in(w.start_cycle as usize, w.end_cycle as usize + 1));
        assert!(!out.timing_diverged(), "no two-plane timing model");
    }

    #[test]
    fn misconfigured_io_fails_the_run_not_the_process() {
        let seed = Seed::new(WindowType::IllegalInstr, 0);
        let (plan, schedule) = schedule_for(&seed);
        let mut backend = NetlistBackend::new(
            "broken",
            synthetic_core(SMALL_SCALE),
            NetlistIo {
                data: 99,
                control: 2,
                index: 3,
                aux: vec![],
            },
        );
        let err = backend
            .run(&plan, &schedule, IftMode::Base, 1_000)
            .unwrap_err();
        assert!(matches!(
            err,
            BackendError::NoSuchInput { role: "data", .. }
        ));
        assert!(err.to_string().contains("input 99"));
    }

    #[test]
    fn backend_spec_parses_and_builds() {
        let cfg = boom_small();
        assert_eq!(
            BackendSpec::parse("behavioural", cfg).unwrap(),
            BackendSpec::Behavioural(cfg)
        );
        assert_eq!(
            BackendSpec::parse("netlist:small", cfg).unwrap(),
            BackendSpec::Netlist(SMALL_SCALE)
        );
        assert_eq!(
            BackendSpec::parse("netlist:xiangshan", cfg).unwrap(),
            BackendSpec::Netlist(XIANGSHAN_SCALE)
        );
        assert!(BackendSpec::parse("netlist:huge", cfg).is_err());
        assert!(BackendSpec::parse("verilator", cfg).is_err());
        assert_eq!(
            BackendSpec::parse("ext:my-sim", cfg).unwrap(),
            BackendSpec::extension("my-sim")
        );
        assert!(BackendSpec::parse("ext:", cfg).is_err(), "empty id");
        assert!(
            BackendSpec::parse("ext:has space", cfg)
                .unwrap_err()
                .contains("invalid extension id"),
            "unregistrable ids are diagnosed at parse time"
        );
        assert_eq!(BackendSpec::extension("my-sim").label(), "ext:my-sim");
        assert!(matches!(
            BackendSpec::extension("never-registered-backend").try_build(),
            Err(crate::builder::BuildError::UnknownBackend { .. })
        ));
        assert_eq!(BackendSpec::default().build().name(), "behavioural");
        assert_eq!(BackendSpec::netlist(BOOM_SCALE).build().dut_name(), "BOOM");
        assert_eq!(
            BackendSpec::netlist(SMALL_SCALE).label(),
            "netlist:SynthSmall"
        );
    }
}
