//! The fuzzing campaign: corpus, coverage-guided loop, ablation variants
//! and the multi-threaded manager (§5's "fuzzing pipeline").

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dejavuzz_ift::{CoverageMatrix, IftMode};
use dejavuzz_uarch::CoreConfig;

use crate::gen::{Seed, WindowType};
use crate::phases::{phase1, phase2, phase3, PhaseOptions};
use crate::report::BugReport;

/// Campaign-level configuration. The ablation variants of the evaluation
/// are spelled as constructors: [`FuzzerOptions::dejavuzz_star`] (random
/// training, §6.2), [`FuzzerOptions::dejavuzz_minus`] (no coverage
/// feedback, §6.3) and [`FuzzerOptions::no_liveness`] (§6.3).
#[derive(Clone, Copy, Debug)]
pub struct FuzzerOptions {
    /// Phase tunables.
    pub phases: PhaseOptions,
    /// Use taint coverage to guide window mutation (false = DejaVuzz⁻:
    /// "randomly updates the secret encoding block or regenerates a new
    /// transient window for each round").
    pub coverage_feedback: bool,
    /// Window-mutation attempts per seed before discarding it.
    pub mutation_attempts: usize,
}

impl Default for FuzzerOptions {
    fn default() -> Self {
        FuzzerOptions {
            phases: PhaseOptions::default(),
            coverage_feedback: true,
            mutation_attempts: 3,
        }
    }
}

impl FuzzerOptions {
    /// The DejaVuzz* variant: swapMem kept, training derivation replaced by
    /// random instructions (Table 3's middle rows).
    pub fn dejavuzz_star() -> Self {
        FuzzerOptions {
            phases: PhaseOptions { training_derivation: false, ..PhaseOptions::default() },
            ..FuzzerOptions::default()
        }
    }

    /// The DejaVuzz⁻ variant: no taint-coverage feedback (Figure 7's
    /// middle curve).
    pub fn dejavuzz_minus() -> Self {
        FuzzerOptions { coverage_feedback: false, ..FuzzerOptions::default() }
    }

    /// The no-liveness variant of §6.3's liveness evaluation.
    pub fn no_liveness() -> Self {
        FuzzerOptions {
            phases: PhaseOptions { liveness_filter: false, ..PhaseOptions::default() },
            ..FuzzerOptions::default()
        }
    }

    /// Overrides the IFT mode (e.g. CellIFT for overhead studies).
    pub fn with_mode(mut self, mode: IftMode) -> Self {
        self.phases.mode = mode;
        self
    }
}

/// Per-window-type statistics (Table 3 rows).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WindowStats {
    /// Windows of this type successfully triggered.
    pub triggered: usize,
    /// Seeds of this type attempted.
    pub attempted: usize,
    /// Sum of training overhead over triggered windows.
    pub to_sum: usize,
    /// Sum of effective training overhead.
    pub eto_sum: usize,
}

impl WindowStats {
    /// Mean TO per triggered window.
    pub fn mean_to(&self) -> f64 {
        if self.triggered == 0 {
            f64::NAN
        } else {
            self.to_sum as f64 / self.triggered as f64
        }
    }

    /// Mean ETO per triggered window.
    pub fn mean_eto(&self) -> f64 {
        if self.triggered == 0 {
            f64::NAN
        } else {
            self.eto_sum as f64 / self.triggered as f64
        }
    }
}

/// Aggregate results of a campaign.
#[derive(Clone, Debug, Default)]
pub struct CampaignStats {
    /// Iterations executed.
    pub iterations: usize,
    /// Cumulative coverage after each iteration (Figure 7's y series).
    pub coverage_curve: Vec<usize>,
    /// Per-window-type triggering and training overhead (Table 3).
    pub windows: BTreeMap<WindowType, WindowStats>,
    /// Deduplicated bug reports (Table 5).
    pub bugs: Vec<BugReport>,
    /// Iteration of the first bug, if any.
    pub first_bug_iteration: Option<usize>,
    /// Total RTL simulations spent.
    pub sim_runs: usize,
    /// Total simulated cycles (proxy for simulation wall-clock).
    pub sim_cycles: u64,
}

impl CampaignStats {
    /// Final coverage points.
    pub fn coverage(&self) -> usize {
        self.coverage_curve.last().copied().unwrap_or(0)
    }

    /// Merges another campaign's stats (multi-threaded manager). Coverage
    /// curves are added pointwise (each thread owns a disjoint coverage
    /// matrix; the union is approximated by the sum of new points, which is
    /// exact when threads explore disjoint regions and conservative
    /// otherwise).
    pub fn merge(&mut self, other: &CampaignStats) {
        self.iterations += other.iterations;
        self.sim_runs += other.sim_runs;
        self.sim_cycles += other.sim_cycles;
        for (wt, ws) in &other.windows {
            let e = self.windows.entry(*wt).or_default();
            e.triggered += ws.triggered;
            e.attempted += ws.attempted;
            e.to_sum += ws.to_sum;
            e.eto_sum += ws.eto_sum;
        }
        for b in &other.bugs {
            if !self.bugs.iter().any(|x| x.dedup_key() == b.dedup_key()) {
                self.bugs.push(b.clone());
            }
        }
        self.first_bug_iteration = match (self.first_bug_iteration, other.first_bug_iteration) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
    }
}

/// A fuzzing campaign against one core model.
#[derive(Clone, Debug)]
pub struct Campaign {
    cfg: CoreConfig,
    opts: FuzzerOptions,
    rng: StdRng,
    coverage: CoverageMatrix,
    stats: CampaignStats,
    /// Running average of coverage gain (the mutation threshold of §4.2.2).
    avg_gain: f64,
    gain_samples: usize,
}

impl Campaign {
    /// A new campaign with deterministic RNG seeding.
    pub fn new(cfg: CoreConfig, opts: FuzzerOptions, rng_seed: u64) -> Self {
        Campaign {
            cfg,
            opts,
            rng: StdRng::seed_from_u64(rng_seed),
            coverage: CoverageMatrix::new(),
            stats: CampaignStats::default(),
            avg_gain: 0.0,
            gain_samples: 0,
        }
    }

    /// The coverage matrix accumulated so far.
    pub fn coverage(&self) -> &CoverageMatrix {
        &self.coverage
    }

    /// The stats accumulated so far.
    pub fn stats(&self) -> &CampaignStats {
        &self.stats
    }

    /// Runs `iterations` fuzzing iterations, returning the final stats.
    pub fn run(&mut self, iterations: usize) -> CampaignStats {
        for _ in 0..iterations {
            self.iteration();
        }
        self.stats.clone()
    }

    /// One fuzzing iteration: Phase 1 → Phase 2 (with coverage-guided
    /// mutation) → Phase 3.
    pub fn iteration(&mut self) {
        let iteration = self.stats.iterations;
        self.stats.iterations += 1;
        let window_type = WindowType::ALL[self.rng.gen_range(0..WindowType::ALL.len())];
        let mut seed = Seed::new(window_type, self.rng.gen());
        let entry = self.stats.windows.entry(window_type).or_default();
        entry.attempted += 1;

        let p1 = phase1(&self.cfg, &seed, &self.opts.phases);
        self.stats.sim_runs += p1.sim_runs;
        if !p1.triggered {
            self.stats.coverage_curve.push(self.coverage.points());
            return;
        }
        let entry = self.stats.windows.entry(window_type).or_default();
        entry.triggered += 1;
        entry.to_sum += p1.to;
        entry.eto_sum += p1.eto;

        // Phase 2 with coverage feedback: mutate the window section while
        // the gain stays below the running average.
        let mut best = None;
        for attempt in 0..=self.opts.mutation_attempts {
            let p2 = phase2(&self.cfg, &seed, &p1, &mut self.coverage, &self.opts.phases);
            self.stats.sim_runs += 1;
            self.stats.sim_cycles += p2.run.total_cycles.0;
            let gain = p2.coverage_gain as f64;
            let below_avg = gain < self.avg_gain;
            let propagated = p2.taints_increased;
            self.gain_samples += 1;
            self.avg_gain += (gain - self.avg_gain) / self.gain_samples as f64;
            best = Some(p2);
            if !self.opts.coverage_feedback {
                break; // DejaVuzz⁻ takes whatever the first roll produced
            }
            if propagated && !below_avg {
                break;
            }
            if attempt < self.opts.mutation_attempts {
                seed = seed.mutate();
            }
        }
        let p2 = best.expect("at least one phase-2 attempt ran");

        // Phase 3 only for cases that accessed and propagated the secret.
        if p2.taints_increased || self.opts.phases.mode == IftMode::Base {
            let p3 = phase3(&self.cfg, &p1, &p2, iteration, &self.opts.phases);
            self.stats.sim_runs += 1;
            for leak in p3.leaks {
                if self.stats.first_bug_iteration.is_none() {
                    self.stats.first_bug_iteration = Some(iteration);
                }
                if !self.stats.bugs.iter().any(|b| b.dedup_key() == leak.dedup_key()) {
                    self.stats.bugs.push(leak);
                }
            }
        }
        self.stats.coverage_curve.push(self.coverage.points());
    }
}

/// The multi-threaded fuzzing manager ("allowing multiple RTL simulation
/// instances to run in parallel", §5). Each thread runs an independent
/// campaign; stats are merged at the end.
pub fn parallel_run(
    cfg: CoreConfig,
    opts: FuzzerOptions,
    threads: usize,
    iterations_per_thread: usize,
    rng_seed: u64,
) -> CampaignStats {
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            std::thread::spawn(move || {
                let mut c = Campaign::new(cfg, opts, rng_seed.wrapping_add(t as u64 * 7919));
                c.run(iterations_per_thread)
            })
        })
        .collect();
    let mut total = CampaignStats::default();
    for h in handles {
        let stats = h.join().expect("campaign thread panicked");
        total.merge(&stats);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use dejavuzz_uarch::boom_small;

    #[test]
    fn campaign_accumulates_coverage_monotonically() {
        let mut c = Campaign::new(boom_small(), FuzzerOptions::default(), 1);
        let stats = c.run(15);
        assert_eq!(stats.iterations, 15);
        assert_eq!(stats.coverage_curve.len(), 15);
        assert!(stats.coverage_curve.windows(2).all(|w| w[0] <= w[1]), "monotone");
        assert!(stats.coverage() > 0);
    }

    #[test]
    fn campaign_finds_bugs_on_vulnerable_boom() {
        let mut c = Campaign::new(boom_small(), FuzzerOptions::default(), 3);
        let stats = c.run(30);
        assert!(!stats.bugs.is_empty(), "30 iterations must surface at least one leak");
        assert!(stats.first_bug_iteration.is_some());
    }

    #[test]
    fn campaign_is_deterministic_per_rng_seed() {
        let s1 = Campaign::new(boom_small(), FuzzerOptions::default(), 9).run(8);
        let s2 = Campaign::new(boom_small(), FuzzerOptions::default(), 9).run(8);
        assert_eq!(s1.coverage_curve, s2.coverage_curve);
        assert_eq!(s1.bugs, s2.bugs);
    }

    #[test]
    fn variants_have_expected_knobs() {
        assert!(!FuzzerOptions::dejavuzz_star().phases.training_derivation);
        assert!(!FuzzerOptions::dejavuzz_minus().coverage_feedback);
        assert!(!FuzzerOptions::no_liveness().phases.liveness_filter);
        assert_eq!(
            FuzzerOptions::default().with_mode(IftMode::CellIft).phases.mode,
            IftMode::CellIft
        );
    }

    #[test]
    fn stats_merge_is_consistent() {
        let a = Campaign::new(boom_small(), FuzzerOptions::default(), 1).run(5);
        let b = Campaign::new(boom_small(), FuzzerOptions::default(), 2).run(5);
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.iterations, 10);
        assert!(m.sim_runs >= a.sim_runs + b.sim_runs);
        assert!(m.bugs.len() <= a.bugs.len() + b.bugs.len(), "dedup applies");
    }

    #[test]
    fn parallel_manager_merges_threads() {
        let stats = parallel_run(boom_small(), FuzzerOptions::default(), 2, 4, 77);
        assert_eq!(stats.iterations, 8);
    }

    #[test]
    fn window_stats_means() {
        let ws = WindowStats { triggered: 4, attempted: 5, to_sum: 40, eto_sum: 8 };
        assert_eq!(ws.mean_to(), 10.0);
        assert_eq!(ws.mean_eto(), 2.0);
        assert!(WindowStats::default().mean_to().is_nan());
    }
}
