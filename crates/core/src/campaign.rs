//! The fuzzing campaign: the single-worker façade over the pipeline
//! (corpus scheduling + coverage-guided loop), the ablation variants, and
//! the parallel entry point (now backed by [`crate::executor`]).

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::SeedableRng;

use dejavuzz_ift::{CoverageMatrix, IftMode};

use crate::backend::{BackendSpec, SimBackend};
use crate::builder::BuildError;
use crate::corpus::Corpus;
use crate::executor::{self, GainAverage};
use crate::gen::WindowType;
use crate::phases::PhaseOptions;
use crate::report::BugReport;
use crate::scheduler::{PolicySpec, SeedPolicy, SlotFeedback};

/// Campaign-level configuration. The ablation variants of the evaluation
/// are spelled as constructors: [`FuzzerOptions::dejavuzz_star`] (random
/// training, §6.2), [`FuzzerOptions::dejavuzz_minus`] (no coverage
/// feedback, §6.3) and [`FuzzerOptions::no_liveness`] (§6.3).
///
/// The system under test is *not* part of these options: pass a
/// [`BackendSpec`] to [`Campaign::with_backend`] /
/// [`crate::builder::CampaignBuilder::backend`]. (Historically a
/// `CoreConfig` was plumbed positionally next to `FuzzerOptions`
/// everywhere; the last compatibility shims for that spelling were
/// removed when [`crate::builder::CampaignBuilder`] landed.)
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FuzzerOptions {
    /// Phase tunables.
    pub phases: PhaseOptions,
    /// Use taint coverage to guide window mutation (false = DejaVuzz⁻:
    /// "randomly updates the secret encoding block or regenerates a new
    /// transient window for each round").
    pub coverage_feedback: bool,
    /// Window-mutation attempts per seed before discarding it.
    pub mutation_attempts: usize,
}

impl Default for FuzzerOptions {
    fn default() -> Self {
        FuzzerOptions {
            phases: PhaseOptions::default(),
            coverage_feedback: true,
            mutation_attempts: 3,
        }
    }
}

impl FuzzerOptions {
    /// The DejaVuzz* variant: swapMem kept, training derivation replaced by
    /// random instructions (Table 3's middle rows).
    pub fn dejavuzz_star() -> Self {
        FuzzerOptions {
            phases: PhaseOptions {
                training_derivation: false,
                ..PhaseOptions::default()
            },
            ..FuzzerOptions::default()
        }
    }

    /// The DejaVuzz⁻ variant: no taint-coverage feedback (Figure 7's
    /// middle curve).
    pub fn dejavuzz_minus() -> Self {
        FuzzerOptions {
            coverage_feedback: false,
            ..FuzzerOptions::default()
        }
    }

    /// The no-liveness variant of §6.3's liveness evaluation.
    pub fn no_liveness() -> Self {
        FuzzerOptions {
            phases: PhaseOptions {
                liveness_filter: false,
                ..PhaseOptions::default()
            },
            ..FuzzerOptions::default()
        }
    }

    /// Overrides the IFT mode (e.g. CellIFT for overhead studies).
    pub fn with_mode(mut self, mode: IftMode) -> Self {
        self.phases.mode = mode;
        self
    }
}

/// Per-window-type statistics (Table 3 rows).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WindowStats {
    /// Windows of this type successfully triggered.
    pub triggered: usize,
    /// Seeds of this type attempted.
    pub attempted: usize,
    /// Sum of training overhead over triggered windows.
    pub to_sum: usize,
    /// Sum of effective training overhead.
    pub eto_sum: usize,
}

impl WindowStats {
    /// Mean TO per triggered window.
    pub fn mean_to(&self) -> f64 {
        if self.triggered == 0 {
            f64::NAN
        } else {
            self.to_sum as f64 / self.triggered as f64
        }
    }

    /// Mean ETO per triggered window.
    pub fn mean_eto(&self) -> f64 {
        if self.triggered == 0 {
            f64::NAN
        } else {
            self.eto_sum as f64 / self.triggered as f64
        }
    }
}

/// Aggregate results of a campaign.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CampaignStats {
    /// Iterations executed.
    pub iterations: usize,
    /// Cumulative coverage after each iteration (Figure 7's y series).
    pub coverage_curve: Vec<usize>,
    /// Per-window-type triggering and training overhead (Table 3).
    pub windows: BTreeMap<WindowType, WindowStats>,
    /// Deduplicated bug reports (Table 5).
    pub bugs: Vec<BugReport>,
    /// Iteration of the first bug, if any.
    pub first_bug_iteration: Option<usize>,
    /// Total RTL simulations spent.
    pub sim_runs: usize,
    /// Total simulated cycles (proxy for simulation wall-clock).
    pub sim_cycles: u64,
    /// Iterations aborted by a backend failure
    /// ([`crate::backend::BackendError`]); always 0 on the in-tree
    /// backends when correctly configured.
    pub failed_runs: usize,
}

impl CampaignStats {
    /// Final coverage points.
    pub fn coverage(&self) -> usize {
        self.coverage_curve.last().copied().unwrap_or(0)
    }

    /// Merges another campaign's stats.
    ///
    /// Counters add; bugs deduplicate. Coverage curves merge by pointwise
    /// **maximum** over the overlap (keeping the longer tail): with
    /// disjoint matrices the true union curve is unknowable after the
    /// fact, and the max is the tightest *lower bound* that never
    /// over-reports. (An earlier revision documented a pointwise *sum*
    /// but never implemented any curve merge at all, leaving
    /// `coverage_curve` empty after a parallel merge.) For the **exact**
    /// union curve, run through [`crate::executor::run`], which maintains
    /// shared coverage while the workers execute instead of approximating
    /// afterwards.
    pub fn merge(&mut self, other: &CampaignStats) {
        self.iterations += other.iterations;
        self.sim_runs += other.sim_runs;
        self.sim_cycles += other.sim_cycles;
        self.failed_runs += other.failed_runs;
        for (i, &c) in other.coverage_curve.iter().enumerate() {
            if i < self.coverage_curve.len() {
                self.coverage_curve[i] = self.coverage_curve[i].max(c);
            } else {
                self.coverage_curve.push(c);
            }
        }
        for (wt, ws) in &other.windows {
            let e = self.windows.entry(*wt).or_default();
            e.triggered += ws.triggered;
            e.attempted += ws.attempted;
            e.to_sum += ws.to_sum;
            e.eto_sum += ws.eto_sum;
        }
        for b in &other.bugs {
            if !self.bugs.iter().any(|x| x.dedup_key() == b.dedup_key()) {
                self.bugs.push(b.clone());
            }
        }
        self.first_bug_iteration = match (self.first_bug_iteration, other.first_bug_iteration) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
    }
}

/// A fuzzing campaign against one system under test: the thin
/// single-worker façade over the pipeline machinery ([`Corpus`]
/// scheduling plus the shared per-iteration engine of
/// [`crate::executor`]). Multi-worker runs go through
/// [`crate::executor::run`]; this type exists for the paper's sequential
/// curves (Figure 7), the ablation variants, and as the simplest entry
/// point.
#[derive(Debug)]
pub struct Campaign {
    backend: Box<dyn SimBackend>,
    opts: FuzzerOptions,
    rng: StdRng,
    corpus: Corpus,
    policy: Box<dyn SeedPolicy>,
    coverage: CoverageMatrix,
    stats: CampaignStats,
    /// Running average of coverage gain (the mutation threshold of §4.2.2).
    gain: GainAverage,
    /// Active scenario-instance indices for fresh-seed draws (sorted by
    /// canonical spec; empty by default).
    scenarios: Vec<u16>,
}

impl Campaign {
    /// A new campaign over any backend spec with deterministic RNG
    /// seeding.
    ///
    /// # Panics
    ///
    /// Panics if `backend` is an unregistered
    /// [`BackendSpec::Extension`]; build custom-backend campaigns
    /// through [`crate::builder::CampaignBuilder`] (structured errors) or
    /// pass the instance directly to [`Campaign::with_boxed_backend`].
    pub fn with_backend(backend: BackendSpec, opts: FuzzerOptions, rng_seed: u64) -> Self {
        Self::with_boxed_backend(backend.build(), opts, rng_seed)
    }

    /// A new campaign over a caller-constructed backend instance (custom
    /// netlists, future external simulators).
    pub fn with_boxed_backend(
        backend: Box<dyn SimBackend>,
        opts: FuzzerOptions,
        rng_seed: u64,
    ) -> Self {
        // Corpus retention/scheduling is coverage feedback, so DejaVuzz⁻
        // runs with the corpus disabled (always explore, never retain).
        let corpus = if opts.coverage_feedback {
            Corpus::default()
        } else {
            Corpus::default().with_exploit_probability(0.0)
        };
        Campaign {
            backend,
            opts,
            rng: StdRng::seed_from_u64(rng_seed),
            corpus,
            policy: PolicySpec::default()
                .build(None)
                .expect("the default policy is built-in"),
            coverage: CoverageMatrix::new(),
            stats: CampaignStats::default(),
            gain: GainAverage::default(),
            scenarios: Vec::new(),
        }
    }

    /// Enables scenario-template window families for fresh-seed draws:
    /// each spec is `family` or `family:param=val`, parsed and interned
    /// through [`dejavuzz_scenarios::intern_spec`]. Call before the
    /// first iteration (the scenario pool is part of the campaign's
    /// replay identity, like the RNG seed).
    pub fn with_scenarios<S: AsRef<str>>(mut self, specs: &[S]) -> Result<Self, BuildError> {
        self.scenarios = crate::builder::intern_scenarios(specs)?.1;
        Ok(self)
    }

    /// Swaps the corpus seed policy (default
    /// [`PolicySpec::EnergyDecay`], the historical behaviour). Call
    /// before the first iteration: mid-campaign swaps would mix two
    /// policies' scheduling state. [`PolicySpec::Extension`] ids that
    /// are not registered are a [`BuildError::UnknownSeedPolicy`].
    pub fn with_seed_policy(mut self, policy: PolicySpec) -> Result<Self, BuildError> {
        self.policy = policy.build(None)?;
        Ok(self)
    }

    /// The simulation backend driving this campaign.
    pub fn backend(&self) -> &dyn SimBackend {
        self.backend.as_ref()
    }

    /// The coverage matrix accumulated so far.
    pub fn coverage(&self) -> &CoverageMatrix {
        &self.coverage
    }

    /// The stats accumulated so far.
    pub fn stats(&self) -> &CampaignStats {
        &self.stats
    }

    /// The seed corpus accumulated so far.
    pub fn corpus(&self) -> &Corpus {
        &self.corpus
    }

    /// Runs `iterations` fuzzing iterations, returning the final stats.
    pub fn run(&mut self, iterations: usize) -> CampaignStats {
        for _ in 0..iterations {
            self.iteration();
        }
        self.stats.clone()
    }

    /// One fuzzing iteration: corpus scheduling → Phase 1 → Phase 2 (with
    /// coverage-guided mutation) → Phase 3 → retention.
    pub fn iteration(&mut self) {
        let slot = self.stats.iterations;
        let scheduled = self.policy.schedule(&mut self.corpus, &mut self.rng);
        let outcome = executor::run_iteration(
            self.backend.as_mut(),
            &self.opts,
            slot,
            scheduled.as_ref(),
            &self.scenarios,
            &mut self.rng,
            &mut self.coverage,
            None, // the view IS the only matrix — no separate accounting
            None, // no concurrent union in the single-worker façade
            &mut self.gain,
        );
        executor::fold_outcome(&mut self.stats, &outcome);
        self.stats.coverage_curve.push(self.coverage.points());
        if self.opts.coverage_feedback {
            // Single worker: the view is the global union, so the
            // outcome's view-fresh points are exactly its global
            // contribution.
            self.policy.record(
                &mut self.corpus,
                &SlotFeedback {
                    seed: &outcome.seed,
                    window_type: outcome.window_type,
                    gain: outcome.final_gain,
                    global_fresh: &outcome.fresh_points,
                    cost: outcome.to as u64,
                },
            );
        }
    }
}

/// The parallel fuzzing entry point ("allowing multiple RTL simulation
/// instances to run in parallel", §5), kept under its historical name.
///
/// Formerly each thread ran a fully independent campaign whose disjoint
/// stats were approximately merged at the end; now this is a thin wrapper
/// over [`crate::executor::run`]: one shared corpus, one shared gain
/// threshold, and an exact concurrent coverage union. `iterations_per_
/// thread` is kept as the historical unit of work — the pool executes
/// `threads * iterations_per_thread` iterations in total.
pub fn parallel_run(
    backend: BackendSpec,
    opts: FuzzerOptions,
    threads: usize,
    iterations_per_thread: usize,
    rng_seed: u64,
) -> CampaignStats {
    let threads = threads.max(1);
    executor::run(
        backend,
        opts,
        threads,
        threads * iterations_per_thread,
        rng_seed,
    )
    .stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use dejavuzz_uarch::boom_small;

    #[test]
    fn campaign_accumulates_coverage_monotonically() {
        let mut c = Campaign::with_backend(
            BackendSpec::behavioural(boom_small()),
            FuzzerOptions::default(),
            1,
        );
        let stats = c.run(15);
        assert_eq!(stats.iterations, 15);
        assert_eq!(stats.coverage_curve.len(), 15);
        assert!(
            stats.coverage_curve.windows(2).all(|w| w[0] <= w[1]),
            "monotone"
        );
        assert!(stats.coverage() > 0);
    }

    #[test]
    fn campaign_finds_bugs_on_vulnerable_boom() {
        let mut c = Campaign::with_backend(
            BackendSpec::behavioural(boom_small()),
            FuzzerOptions::default(),
            3,
        );
        let stats = c.run(30);
        assert!(
            !stats.bugs.is_empty(),
            "30 iterations must surface at least one leak"
        );
        assert!(stats.first_bug_iteration.is_some());
    }

    #[test]
    fn campaign_is_deterministic_per_rng_seed() {
        let s1 = Campaign::with_backend(
            BackendSpec::behavioural(boom_small()),
            FuzzerOptions::default(),
            9,
        )
        .run(8);
        let s2 = Campaign::with_backend(
            BackendSpec::behavioural(boom_small()),
            FuzzerOptions::default(),
            9,
        )
        .run(8);
        assert_eq!(s1.coverage_curve, s2.coverage_curve);
        assert_eq!(s1.bugs, s2.bugs);
    }

    #[test]
    fn variants_have_expected_knobs() {
        assert!(!FuzzerOptions::dejavuzz_star().phases.training_derivation);
        assert!(!FuzzerOptions::dejavuzz_minus().coverage_feedback);
        assert!(!FuzzerOptions::no_liveness().phases.liveness_filter);
        assert_eq!(
            FuzzerOptions::default()
                .with_mode(IftMode::CellIft)
                .phases
                .mode,
            IftMode::CellIft
        );
    }

    #[test]
    fn stats_merge_is_consistent() {
        let a = Campaign::with_backend(
            BackendSpec::behavioural(boom_small()),
            FuzzerOptions::default(),
            1,
        )
        .run(5);
        let b = Campaign::with_backend(
            BackendSpec::behavioural(boom_small()),
            FuzzerOptions::default(),
            2,
        )
        .run(5);
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.iterations, 10);
        assert!(m.sim_runs >= a.sim_runs + b.sim_runs);
        assert!(m.bugs.len() <= a.bugs.len() + b.bugs.len(), "dedup applies");
        // The curve merge (the old implementation dropped curves entirely,
        // leaving `parallel_run` with an empty one): pointwise max over
        // the overlap — never the inflated sum.
        assert_eq!(m.coverage_curve.len(), 5);
        for (i, &c) in m.coverage_curve.iter().enumerate() {
            assert_eq!(c, a.coverage_curve[i].max(b.coverage_curve[i]));
            assert!(c <= a.coverage_curve[i] + b.coverage_curve[i]);
        }
    }

    #[test]
    fn merge_keeps_longer_curve_tail() {
        let a = Campaign::with_backend(
            BackendSpec::behavioural(boom_small()),
            FuzzerOptions::default(),
            1,
        )
        .run(3);
        let b = Campaign::with_backend(
            BackendSpec::behavioural(boom_small()),
            FuzzerOptions::default(),
            2,
        )
        .run(6);
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.coverage_curve.len(), 6, "longer tail survives");
        assert_eq!(m.coverage_curve[5], b.coverage_curve[5]);
    }

    #[test]
    fn parallel_manager_merges_threads() {
        let stats = parallel_run(
            BackendSpec::behavioural(boom_small()),
            FuzzerOptions::default(),
            2,
            4,
            77,
        );
        assert_eq!(stats.iterations, 8);
    }

    #[test]
    fn window_stats_means() {
        let ws = WindowStats {
            triggered: 4,
            attempted: 5,
            to_sum: 40,
            eto_sum: 8,
        };
        assert_eq!(ws.mean_to(), 10.0);
        assert_eq!(ws.mean_eto(), 2.0);
        assert!(WindowStats::default().mean_to().is_nan());
    }
}
