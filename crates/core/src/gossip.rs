//! Shard gossip: the live cross-campaign exchange of coverage deltas
//! and favoured corpus entries.
//!
//! A fleet of shards used to meet only at the end of a campaign
//! (`dejavuzz-merge` over snapshots), so every shard re-discovered the
//! same coverage from scratch. Gossip makes the fleet *live*: at a
//! configurable round interval
//! ([`crate::builder::CampaignBuilder::gossip`]), the orchestrator
//! exports a [`GossipFrame`] — the points its union gained since its
//! last export (O(delta), via the [`dejavuzz_ift::CoverageLog`]
//! watermark API) plus its highest-energy corpus entries — and imports
//! whatever frames its peers shipped since the previous boundary.
//!
//! Three contracts keep a gossiping campaign as analysable as a solo
//! one:
//!
//! * **Imports happen only at round boundaries** — the one seam where
//!   every worker's coverage view equals the global union, so imported
//!   points ride the existing round-start delta broadcast and determinism
//!   *within* the shard is untouched (peer timing decides only *which*
//!   boundary a frame lands at).
//! * **Every import is an explicit observer event**
//!   ([`crate::observer::PeerDeltaImported`],
//!   [`crate::observer::SeedImported`]) — the telemetry stream accounts
//!   for every point of coverage that did not come from a committed slot.
//! * **Zero peers is byte-identical to no gossip** — a link that never
//!   delivers frames leaves stdout, telemetry and snapshots untouched
//!   (diffed by CI's `fleet-smoke`).
//!
//! Transport is pluggable through [`GossipLink`]: `dejavuzz-fleet`
//! provides an in-process broadcast bus for `dejavuzz-serve`'s co-owned
//! campaigns, and [`UnixGossipLink`] here dials a hub socket for
//! cross-process fleets (`dejavuzz-fuzz --peers unix:PATH`). The wire
//! format rides the `dejavuzz-persist` envelope — framed, checksummed,
//! versioned ([`dejavuzz_persist::GOSSIP_MAGIC`]) — so a truncated or
//! corrupted frame is a structured decode error, never a misparse.

use std::sync::{Arc, Mutex};

use dejavuzz_ift::CoveragePoint;
use dejavuzz_persist::{
    frame, DecodeError, Decoder, Encoder, Persist, GOSSIP_MAGIC, GOSSIP_MIN_VERSION, GOSSIP_VERSION,
};

use crate::corpus::CorpusEntry;

/// One shard's gossip export: a coverage delta plus favoured corpus
/// entries, stamped with the exporter's identity and progress.
#[derive(Clone, Debug, PartialEq)]
pub struct GossipFrame {
    /// Exporting shard's id.
    pub shard: u32,
    /// Iterations the exporter had committed at export time.
    pub iterations: usize,
    /// Points the exporter's union gained since its previous export, in
    /// discovery order.
    pub delta: Vec<CoveragePoint>,
    /// The exporter's highest-energy corpus entries (capped at
    /// [`FAVOURED_PER_FRAME`]).
    pub favoured: Vec<CorpusEntry>,
}

/// Corpus entries shipped per frame: enough to pollinate a peer's
/// scheduling without letting one shard's corpus flood another's.
pub const FAVOURED_PER_FRAME: usize = 4;

impl Persist for GossipFrame {
    fn encode(&self, enc: &mut Encoder) {
        enc.u32(self.shard);
        enc.usize(self.iterations);
        self.delta.encode(enc);
        self.favoured.encode(enc);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(GossipFrame {
            shard: dec.u32()?,
            iterations: dec.usize()?,
            delta: Vec::decode(dec)?,
            favoured: Vec::decode(dec)?,
        })
    }
}

impl GossipFrame {
    /// Seals the frame into its wire envelope
    /// (`[GOSSIP_MAGIC][version][len][checksum][payload]`).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        self.encode(&mut enc);
        frame::seal(GOSSIP_MAGIC, GOSSIP_VERSION, &enc.into_bytes())
    }

    /// Validates and decodes one complete wire frame.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        let (_, payload) =
            frame::open_versioned(GOSSIP_MAGIC, GOSSIP_MIN_VERSION..=GOSSIP_VERSION, bytes)?;
        let mut dec = Decoder::new(payload);
        let frame = GossipFrame::decode(&mut dec)?;
        dec.finish()?;
        Ok(frame)
    }
}

/// A shard's connection to its peers. The orchestrator calls
/// [`GossipLink::publish`] then [`GossipLink::drain`] at each gossip
/// boundary; everything between — fan-out, buffering, sockets — is the
/// link's business. Implementations must never block the commit path
/// indefinitely: publish-and-forget, drain-what-arrived.
pub trait GossipLink: Send {
    /// Ships this shard's frame towards its peers.
    fn publish(&mut self, frame: &GossipFrame);

    /// Frames received from peers since the last drain, in arrival order.
    fn drain(&mut self) -> Vec<GossipFrame>;
}

/// A shareable link handle: the orchestrator is cloneable and runs with
/// `&self`, so the link travels behind `Arc<Mutex<..>>`.
pub type SharedGossipLink = Arc<Mutex<dyn GossipLink>>;

/// Wraps a link for [`crate::builder::CampaignBuilder::gossip`].
pub fn shared_link(link: impl GossipLink + 'static) -> SharedGossipLink {
    Arc::new(Mutex::new(link))
}

/// A link with no peers: publishes into the void, never delivers. The
/// zero-peer reference point — a campaign gossiping through a `NullLink`
/// is byte-identical to one not gossiping at all (asserted by
/// `tests/fleet.rs` and the CI `fleet-smoke` diff).
#[derive(Clone, Copy, Debug, Default)]
pub struct NullLink;

impl GossipLink for NullLink {
    fn publish(&mut self, _frame: &GossipFrame) {}

    fn drain(&mut self) -> Vec<GossipFrame> {
        Vec::new()
    }
}

/// Fans one shard out to several links: publishes to all, drains all (in
/// link order). `dejavuzz-fuzz --peers a,b` builds one of these over two
/// [`UnixGossipLink`]s.
#[derive(Default)]
pub struct MultiLink {
    links: Vec<Box<dyn GossipLink>>,
}

impl MultiLink {
    /// A fan-out over `links`.
    pub fn new(links: Vec<Box<dyn GossipLink>>) -> Self {
        MultiLink { links }
    }
}

impl GossipLink for MultiLink {
    fn publish(&mut self, frame: &GossipFrame) {
        for link in &mut self.links {
            link.publish(frame);
        }
    }

    fn drain(&mut self) -> Vec<GossipFrame> {
        self.links.iter_mut().flat_map(|l| l.drain()).collect()
    }
}

/// A gossip link over a Unix stream socket to a hub (`dejavuzz-serve`):
/// publish writes wire frames, drain reads whatever complete frames have
/// arrived without blocking. See [`unix::UnixGossipLink`].
#[cfg(unix)]
pub use unix::UnixGossipLink;

#[cfg(unix)]
mod unix {
    use std::io::{ErrorKind, Read, Write};
    use std::os::unix::net::UnixStream;
    use std::path::Path;

    use super::{GossipFrame, GossipLink};

    /// The client side of a cross-process gossip mesh: dials a
    /// `dejavuzz-serve` hub socket, announces itself with a
    /// `gossip <shard>` line, then exchanges wire frames — writes are
    /// blocking (frames are small), reads are drained non-blockingly at
    /// each boundary with partial frames buffered across drains.
    ///
    /// A broken hub never kills the campaign: on the first socket error
    /// the link warns on stderr and goes silent, degrading the shard to
    /// a solo run.
    pub struct UnixGossipLink {
        stream: UnixStream,
        /// Bytes read but not yet forming a complete frame.
        buf: Vec<u8>,
        /// Set on the first socket error; the link is inert afterwards.
        dead: bool,
    }

    impl UnixGossipLink {
        /// Connects to a hub socket and joins its mesh as `shard`.
        pub fn connect(path: &Path, shard: u32) -> std::io::Result<Self> {
            let mut stream = UnixStream::connect(path)?;
            stream.write_all(format!("gossip {shard}\n").as_bytes())?;
            Ok(UnixGossipLink {
                stream,
                buf: Vec::new(),
                dead: false,
            })
        }

        /// Wraps an already-connected stream (hub side, tests).
        pub fn from_stream(stream: UnixStream) -> Self {
            UnixGossipLink {
                stream,
                buf: Vec::new(),
                dead: false,
            }
        }

        /// True once the socket failed: the link is permanently inert
        /// and a relay loop holding it should drop the peer.
        pub fn is_dead(&self) -> bool {
            self.dead
        }

        fn fail(&mut self, what: &str, e: &dyn std::fmt::Display) {
            if !self.dead {
                self.dead = true;
                eprintln!("dejavuzz: gossip link {what} failed ({e}); continuing solo");
            }
        }

        /// Pulls every complete frame out of the reassembly buffer.
        fn complete_frames(&mut self) -> Vec<GossipFrame> {
            let mut frames = Vec::new();
            let mut consumed = 0;
            while let Some(len) = dejavuzz_persist::framed_len(&self.buf[consumed..]) {
                if self.buf.len() - consumed < len {
                    break;
                }
                match GossipFrame::from_bytes(&self.buf[consumed..consumed + len]) {
                    Ok(f) => frames.push(f),
                    Err(e) => {
                        self.fail("decode", &e);
                        self.buf.clear();
                        return frames;
                    }
                }
                consumed += len;
            }
            self.buf.drain(..consumed);
            frames
        }
    }

    impl GossipLink for UnixGossipLink {
        fn publish(&mut self, frame: &GossipFrame) {
            if self.dead {
                return;
            }
            if let Err(e) = self.stream.write_all(&frame.to_bytes()) {
                self.fail("write", &e);
            }
        }

        fn drain(&mut self) -> Vec<GossipFrame> {
            if self.dead {
                return Vec::new();
            }
            if let Err(e) = self.stream.set_nonblocking(true) {
                self.fail("drain", &e);
                return Vec::new();
            }
            let mut chunk = [0u8; 4096];
            loop {
                match self.stream.read(&mut chunk) {
                    Ok(0) => {
                        self.fail("read", &"peer closed the socket");
                        break;
                    }
                    Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(e) => {
                        self.fail("read", &e);
                        break;
                    }
                }
            }
            let _ = self.stream.set_nonblocking(false);
            self.complete_frames()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{Seed, WindowType};

    fn pt(module: &'static str, index: usize) -> CoveragePoint {
        CoveragePoint { module, index }
    }

    fn frame_with(shard: u32, n: usize) -> GossipFrame {
        GossipFrame {
            shard,
            iterations: 10 * n,
            delta: (1..=n).map(|i| pt("rob", i)).collect(),
            favoured: vec![CorpusEntry {
                seed: Seed::new(WindowType::ALL[0], 7),
                gain: n,
                schedules: 0,
            }],
        }
    }

    #[test]
    fn frame_wire_round_trip() {
        let f = frame_with(3, 5);
        let bytes = f.to_bytes();
        assert_eq!(GossipFrame::from_bytes(&bytes).unwrap(), f);
    }

    #[test]
    fn corrupted_frames_fail_structurally() {
        let mut bytes = frame_with(1, 3).to_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        assert!(GossipFrame::from_bytes(&bytes).is_err());
        assert!(GossipFrame::from_bytes(&bytes[..10]).is_err());
        // A snapshot-magic frame is a BadMagic, not a misparse.
        let other = dejavuzz_persist::seal(*b"DJVZSNAP", 1, b"x");
        assert!(matches!(
            GossipFrame::from_bytes(&other),
            Err(DecodeError::BadMagic { .. })
        ));
    }

    #[test]
    fn null_link_never_delivers() {
        let mut link = NullLink;
        link.publish(&frame_with(0, 2));
        assert!(link.drain().is_empty());
    }

    #[test]
    fn multi_link_fans_out_and_merges() {
        use std::collections::VecDeque;
        use std::sync::{Arc, Mutex};

        /// A loopback link: publishes queue straight into its own inbox.
        struct Loop(Arc<Mutex<VecDeque<GossipFrame>>>);
        impl GossipLink for Loop {
            fn publish(&mut self, frame: &GossipFrame) {
                self.0.lock().unwrap().push_back(frame.clone());
            }
            fn drain(&mut self) -> Vec<GossipFrame> {
                self.0.lock().unwrap().drain(..).collect()
            }
        }

        let (a, b) = (
            Arc::new(Mutex::new(VecDeque::new())),
            Arc::new(Mutex::new(VecDeque::new())),
        );
        let mut multi = MultiLink::new(vec![
            Box::new(Loop(Arc::clone(&a))),
            Box::new(Loop(Arc::clone(&b))),
        ]);
        multi.publish(&frame_with(1, 1));
        assert_eq!(a.lock().unwrap().len(), 1);
        assert_eq!(b.lock().unwrap().len(), 1);
        assert_eq!(multi.drain().len(), 2, "drains every constituent link");
        assert!(multi.drain().is_empty());
    }

    #[cfg(unix)]
    #[test]
    fn unix_link_exchanges_frames_over_a_socketpair() {
        use std::io::Write;
        use std::os::unix::net::UnixStream;

        let (left, mut raw) = UnixStream::pair().unwrap();
        let mut a = UnixGossipLink::from_stream(left);

        assert!(a.drain().is_empty(), "nothing sent yet");

        // Two back-to-back frames on the stream split apart cleanly.
        raw.write_all(&frame_with(2, 3).to_bytes()).unwrap();
        raw.write_all(&frame_with(2, 4).to_bytes()).unwrap();
        let got = a.drain();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0], frame_with(2, 3));
        assert_eq!(got[1], frame_with(2, 4));

        // A frame split mid-envelope reassembles across drains.
        let bytes = frame_with(9, 2).to_bytes();
        raw.write_all(&bytes[..10]).unwrap();
        assert!(a.drain().is_empty(), "half a frame decodes nothing");
        raw.write_all(&bytes[10..]).unwrap();
        let got = a.drain();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0], frame_with(9, 2));

        // And the link's own publishes are plain wire frames.
        let (other, mut peer) = UnixStream::pair().unwrap();
        let mut b = UnixGossipLink::from_stream(other);
        b.publish(&frame_with(5, 1));
        use std::io::Read;
        peer.set_nonblocking(true).unwrap();
        let mut received = Vec::new();
        let mut chunk = [0u8; 1024];
        while let Ok(n) = peer.read(&mut chunk) {
            if n == 0 {
                break;
            }
            received.extend_from_slice(&chunk[..n]);
        }
        assert_eq!(
            GossipFrame::from_bytes(&received).unwrap(),
            frame_with(5, 1)
        );
    }
}
