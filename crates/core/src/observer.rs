//! [`CampaignObserver`]: the typed event stream of a running campaign.
//!
//! Historically the only way to consume campaign progress was scraping
//! `dejavuzz-fuzz` stdout. This module turns the campaign into an
//! *engine with an event stream*: the executor invokes observers at its
//! deterministic commit points — never from worker threads — so for a
//! fixed `(seed, workers, batch, scheduler, policy)` the full sequence of
//! events (kinds *and* payloads) is reproducible run over run,
//! regardless of thread timing, and a halted-then-resumed campaign emits
//! exactly the tail of the uninterrupted campaign's sequence (asserted
//! by `tests/observer.rs`).
//!
//! Events and when they fire:
//!
//! * [`CampaignObserver::round_started`] — after a round is planned,
//!   before any work is dispatched;
//! * [`CampaignObserver::slot_committed`] — once per iteration, in
//!   global slot order, after the outcome folded into campaign state;
//! * [`CampaignObserver::coverage_gained`] — after a committed slot
//!   grew the global coverage union;
//! * [`CampaignObserver::bug_found`] — once per *newly deduplicated*
//!   bug report (re-discoveries of a known dedup key stay silent);
//! * [`CampaignObserver::snapshot_written`] — after a checkpoint landed
//!   on disk (atomic write-rename already done);
//! * [`CampaignObserver::campaign_finished`] — once, with the final
//!   [`ExecutorReport`].
//!
//! Two built-ins cover the CLI's needs: [`TextObserver`] reimplements
//! the historical `dejavuzz-fuzz` stdout report (byte-identical for the
//! default run — CI diffs it), and [`JsonLinesObserver`] emits one JSON
//! object per event for `dejavuzz-fuzz --telemetry json` (and any
//! embedder that wants machine-readable progress without scraping).
//! Wall-clock only appears in [`CampaignFinished::elapsed`] and is
//! deliberately *excluded* from the JSON stream, so telemetry is
//! byte-deterministic per `(seed, workers)`.

use std::io::{self, Write};
use std::path::Path;
use std::time::Duration;

use crate::executor::ExecutorReport;
use crate::gen::WindowType;
use crate::report::BugReport;

/// A round was planned and is about to be dispatched.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RoundStarted {
    /// First global iteration slot of the round. Continues across a
    /// halt/resume boundary (unlike a per-run round ordinal would), so
    /// resumed streams concatenate seamlessly onto halted ones.
    pub first_slot: usize,
    /// Slots the round spans.
    pub slots: usize,
    /// The shared mutation-gain threshold entering the round (§4.2.2).
    pub gain_threshold_samples: usize,
}

/// One iteration committed, in global slot order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SlotCommitted {
    /// Global iteration slot.
    pub slot: usize,
    /// Logical worker stream the slot is accounted to.
    pub stream: usize,
    /// The transient-window category the seed targeted.
    pub window_type: WindowType,
    /// Whether the transient window actually opened.
    pub triggered: bool,
    /// Training overhead of the triggered window (0 if untriggered).
    pub to: usize,
    /// Effective training overhead.
    pub eto: usize,
    /// Simulator runs this iteration spent.
    pub sim_runs: usize,
    /// Coverage gain of the selected phase-2 attempt.
    pub final_gain: usize,
    /// Points this slot contributed to the global union.
    pub fresh_points: usize,
    /// Global coverage after this commit.
    pub total_points: usize,
    /// A backend failure that aborted the iteration, if any.
    pub error: Option<String>,
}

/// A committed slot grew the global coverage union.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoverageGained<'a> {
    /// The contributing slot.
    pub slot: usize,
    /// The newly covered points, in commit order.
    pub points: &'a [dejavuzz_ift::CoveragePoint],
    /// Global coverage after folding them in.
    pub total_points: usize,
}

/// A new (deduplicated) bug report was committed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BugFound {
    /// The slot that found it.
    pub slot: usize,
    /// The report (already deduplicated by
    /// [`BugReport::dedup_key`]).
    pub bug: BugReport,
}

/// A checkpoint landed on disk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SnapshotWritten<'a> {
    /// Where the checkpoint was written (the rotated sibling path when
    /// rotation is on).
    pub path: &'a Path,
    /// Iterations completed at the checkpoint.
    pub iterations: usize,
    /// Periodic mid-run checkpoint (true) or the end-of-run one (false).
    pub periodic: bool,
}

/// A gossiping peer's coverage delta was imported at a round boundary.
///
/// Cross-shard imports are the one way coverage can grow outside a
/// [`SlotCommitted`] commit, so every import is an explicit event: a
/// gossiping campaign's coverage trajectory stays fully auditable from
/// its telemetry stream alone (fired between the final commit of a round
/// and the next [`RoundStarted`] — asserted by `tests/fleet.rs`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PeerDeltaImported {
    /// Shard id of the exporting peer.
    pub from_shard: u32,
    /// Iterations the peer had committed when it exported the frame.
    pub peer_iterations: usize,
    /// Local iterations committed when the import was applied (the round
    /// boundary).
    pub boundary: usize,
    /// Points carried by the frame's delta.
    pub points: usize,
    /// Points that were new to this shard's union.
    pub fresh_points: usize,
    /// Global coverage after folding the delta in.
    pub total_points: usize,
}

/// A gossiping peer's favoured corpus entry was offered to the corpus at
/// a round boundary (same auditability contract as
/// [`PeerDeltaImported`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SeedImported {
    /// Shard id of the exporting peer.
    pub from_shard: u32,
    /// Local iterations committed when the import was applied.
    pub boundary: usize,
    /// The imported seed's transient-window category.
    pub window_type: WindowType,
    /// The imported seed's entropy (its lineage key, with the window).
    pub entropy: u64,
    /// The coverage gain the peer retained the seed with.
    pub gain: usize,
}

/// The campaign completed.
#[derive(Clone, Copy, Debug)]
pub struct CampaignFinished<'a> {
    /// The final report (stats, exact coverage, per-worker accounting).
    pub report: &'a ExecutorReport,
    /// Wall-clock of this run (the resumed portion only, on resumed
    /// campaigns). The only wall-clock in the event stream — everything
    /// else is deterministic per `(seed, workers)`.
    pub elapsed: Duration,
}

/// The campaign event stream. Every method has a no-op default, so an
/// observer implements only what it consumes. Invoked exclusively from
/// the orchestrator's commit path — implementations may hold `&mut`
/// state without any synchronisation.
pub trait CampaignObserver {
    /// See [`RoundStarted`].
    fn round_started(&mut self, _ev: &RoundStarted) {}
    /// See [`SlotCommitted`].
    fn slot_committed(&mut self, _ev: &SlotCommitted) {}
    /// See [`CoverageGained`].
    fn coverage_gained(&mut self, _ev: &CoverageGained<'_>) {}
    /// See [`BugFound`].
    fn bug_found(&mut self, _ev: &BugFound) {}
    /// See [`SnapshotWritten`].
    fn snapshot_written(&mut self, _ev: &SnapshotWritten<'_>) {}
    /// See [`PeerDeltaImported`].
    fn peer_delta_imported(&mut self, _ev: &PeerDeltaImported) {}
    /// See [`SeedImported`].
    fn seed_imported(&mut self, _ev: &SeedImported) {}
    /// See [`CampaignFinished`].
    fn campaign_finished(&mut self, _ev: &CampaignFinished<'_>) {}
}

/// The historical `dejavuzz-fuzz` stdout report as an observer: an
/// optional banner on the first event, the full campaign report on
/// [`CampaignFinished`]. The default CLI run's stdout through this
/// observer is byte-identical to the pre-observer CLI (diffed by CI).
pub struct TextObserver<W: Write> {
    out: W,
    banner: Option<String>,
    banner_pending: bool,
}

impl TextObserver<io::Stdout> {
    /// A text reporter on stdout.
    pub fn stdout() -> Self {
        TextObserver::new(io::stdout())
    }
}

impl<W: Write> TextObserver<W> {
    /// A text reporter on any sink.
    pub fn new(out: W) -> Self {
        TextObserver {
            out,
            banner: None,
            banner_pending: false,
        }
    }

    /// Prints `line` before any other output (the CLI's "fuzzing …"
    /// announcement).
    pub fn with_banner(mut self, line: impl Into<String>) -> Self {
        self.banner = Some(line.into());
        self.banner_pending = true;
        self
    }

    fn flush_banner(&mut self) {
        if self.banner_pending {
            self.banner_pending = false;
            if let Some(banner) = &self.banner {
                let _ = writeln!(self.out, "{banner}");
            }
        }
    }
}

impl<W: Write> CampaignObserver for TextObserver<W> {
    fn round_started(&mut self, _ev: &RoundStarted) {
        self.flush_banner();
    }

    fn campaign_finished(&mut self, ev: &CampaignFinished<'_>) {
        self.flush_banner();
        let report = ev.report;
        let stats = &report.stats;
        let elapsed = ev.elapsed.as_secs_f64();
        let out = &mut self.out;
        let _ = writeln!(out, "elapsed:          {elapsed:.1}s");
        let _ = writeln!(
            out,
            "throughput:       {:.1} seeds/sec",
            stats.iterations as f64 / elapsed.max(1e-9)
        );
        let _ = writeln!(out, "iterations:       {}", stats.iterations);
        if stats.failed_runs > 0 {
            let _ = writeln!(
                out,
                "failed runs:      {} (backend errors)",
                stats.failed_runs
            );
        }
        let _ = writeln!(out, "simulations:      {}", stats.sim_runs);
        let _ = writeln!(out, "simulated cycles: {}", stats.sim_cycles);
        let _ = writeln!(out, "coverage points:  {} (exact union)", stats.coverage());
        let _ = writeln!(
            out,
            "corpus retained:  {} (evicted {})",
            report.corpus_retained, report.corpus_evicted
        );
        let _ = writeln!(out, "first bug:        {:?}", stats.first_bug_iteration);
        let _ = writeln!(out, "\nworkers:");
        for w in &report.workers {
            let _ = writeln!(
                out,
                "  #{:<3} {:>5} iterations, {:>5} points observed",
                w.worker,
                w.iterations,
                w.observed.points()
            );
        }
        let _ = writeln!(out, "\nwindows:");
        for (wt, ws) in &stats.windows {
            let _ = writeln!(
                out,
                "  {:<28} {:>3}/{:<3}  TO {:>6.1}  ETO {:>5.1}",
                wt.name(),
                ws.triggered,
                ws.attempted,
                ws.mean_to(),
                ws.mean_eto()
            );
        }
        let _ = writeln!(out, "\nbugs ({}):", stats.bugs.len());
        for b in &stats.bugs {
            let _ = writeln!(out, "  {b}");
        }
        let _ = out.flush();
    }
}

/// Escapes a string into a JSON string literal (hand-rolled — the build
/// environment has no serde). Public so every JSON producer in the
/// workspace (this observer, the bench harness's `BENCH_throughput.json`
/// writer) shares one set of escape rules.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Machine-readable telemetry: one JSON object per event, one event per
/// line (`dejavuzz-fuzz --telemetry json`). The stream contains no
/// wall-clock, so its bytes are deterministic per `(seed, workers,
/// batch, scheduler, policy)` — asserted by `tests/observer.rs` and the
/// CI telemetry smoke.
pub struct JsonLinesObserver<W: Write> {
    out: W,
}

impl JsonLinesObserver<io::Stdout> {
    /// A JSON-lines telemetry stream on stdout.
    pub fn stdout() -> Self {
        JsonLinesObserver::new(io::stdout())
    }
}

impl<W: Write> JsonLinesObserver<W> {
    /// A JSON-lines telemetry stream on any sink.
    pub fn new(out: W) -> Self {
        JsonLinesObserver { out }
    }
}

impl<W: Write> CampaignObserver for JsonLinesObserver<W> {
    fn round_started(&mut self, ev: &RoundStarted) {
        let _ = writeln!(
            self.out,
            "{{\"event\":\"round_started\",\"first_slot\":{},\"slots\":{},\"gain_samples\":{}}}",
            ev.first_slot, ev.slots, ev.gain_threshold_samples
        );
    }

    fn slot_committed(&mut self, ev: &SlotCommitted) {
        let error = match &ev.error {
            Some(e) => json_str(e),
            None => "null".to_string(),
        };
        let _ = writeln!(
            self.out,
            "{{\"event\":\"slot_committed\",\"slot\":{},\"stream\":{},\"window\":{},\
             \"triggered\":{},\"to\":{},\"eto\":{},\"sim_runs\":{},\"final_gain\":{},\
             \"fresh_points\":{},\"total_points\":{},\"error\":{}}}",
            ev.slot,
            ev.stream,
            json_str(ev.window_type.name()),
            ev.triggered,
            ev.to,
            ev.eto,
            ev.sim_runs,
            ev.final_gain,
            ev.fresh_points,
            ev.total_points,
            error
        );
    }

    fn coverage_gained(&mut self, ev: &CoverageGained<'_>) {
        let _ = writeln!(
            self.out,
            "{{\"event\":\"coverage_gained\",\"slot\":{},\"gained\":{},\"total_points\":{}}}",
            ev.slot,
            ev.points.len(),
            ev.total_points
        );
    }

    fn bug_found(&mut self, ev: &BugFound) {
        let _ = writeln!(
            self.out,
            "{{\"event\":\"bug_found\",\"slot\":{},\"core\":{},\"attack\":{},\
             \"window_class\":{},\"component\":{},\"iteration\":{}}}",
            ev.slot,
            json_str(ev.bug.core),
            json_str(ev.bug.attack.name()),
            json_str(ev.bug.window_type.table5_class()),
            json_str(ev.bug.channel.component()),
            ev.bug.iteration
        );
    }

    fn snapshot_written(&mut self, ev: &SnapshotWritten<'_>) {
        let _ = writeln!(
            self.out,
            "{{\"event\":\"snapshot_written\",\"path\":{},\"iterations\":{},\"periodic\":{}}}",
            json_str(&ev.path.display().to_string()),
            ev.iterations,
            ev.periodic
        );
    }

    fn peer_delta_imported(&mut self, ev: &PeerDeltaImported) {
        let _ = writeln!(
            self.out,
            "{{\"event\":\"peer_delta_imported\",\"from_shard\":{},\"peer_iterations\":{},\
             \"boundary\":{},\"points\":{},\"fresh_points\":{},\"total_points\":{}}}",
            ev.from_shard,
            ev.peer_iterations,
            ev.boundary,
            ev.points,
            ev.fresh_points,
            ev.total_points
        );
    }

    fn seed_imported(&mut self, ev: &SeedImported) {
        let _ = writeln!(
            self.out,
            "{{\"event\":\"seed_imported\",\"from_shard\":{},\"boundary\":{},\"window\":{},\
             \"entropy\":{},\"gain\":{}}}",
            ev.from_shard,
            ev.boundary,
            json_str(ev.window_type.name()),
            ev.entropy,
            ev.gain
        );
    }

    fn campaign_finished(&mut self, ev: &CampaignFinished<'_>) {
        let stats = &ev.report.stats;
        let _ = writeln!(
            self.out,
            "{{\"event\":\"campaign_finished\",\"iterations\":{},\"sim_runs\":{},\
             \"sim_cycles\":{},\"coverage_points\":{},\"corpus_retained\":{},\
             \"corpus_evicted\":{},\"failed_runs\":{},\"bugs\":{},\"first_bug\":{}}}",
            stats.iterations,
            stats.sim_runs,
            stats.sim_cycles,
            stats.coverage(),
            ev.report.corpus_retained,
            ev.report.corpus_evicted,
            stats.failed_runs,
            stats.bugs.len(),
            match stats.first_bug_iteration {
                Some(i) => i.to_string(),
                None => "null".to_string(),
            }
        );
        let _ = self.out.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_strings_escape_control_and_quote_characters() {
        assert_eq!(json_str("plain"), "\"plain\"");
        assert_eq!(json_str("a\"b"), "\"a\\\"b\"");
        assert_eq!(json_str("a\\b"), "\"a\\\\b\"");
        assert_eq!(json_str("a\nb\tc"), "\"a\\nb\\tc\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn text_observer_banner_prints_once_before_anything() {
        let mut obs = TextObserver::new(Vec::new()).with_banner("fuzzing TEST\n");
        obs.round_started(&RoundStarted {
            first_slot: 0,
            slots: 4,
            gain_threshold_samples: 0,
        });
        obs.round_started(&RoundStarted {
            first_slot: 4,
            slots: 4,
            gain_threshold_samples: 3,
        });
        assert_eq!(
            String::from_utf8(obs.out).unwrap(),
            "fuzzing TEST\n\n",
            "the banner (with its embedded blank line) prints exactly once"
        );
    }
}
