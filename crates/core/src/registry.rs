//! The open extension registry: named constructors for user-supplied
//! [`Scheduler`], [`SeedPolicy`] and [`SimBackend`] implementations.
//!
//! The built-in scheduling and simulation implementations are selected by
//! the closed enums [`crate::scheduler::SchedulerSpec`],
//! [`crate::scheduler::PolicySpec`] and [`crate::backend::BackendSpec`] —
//! closed so campaign snapshots can persist them as stable tags. Custom
//! implementations cannot live in those enums, but they still have to
//! round-trip through persistence: a snapshot taken under a custom
//! scheduler must name *which* scheduler it ran, and `--resume` must be
//! able to rebuild it, state included. The registry closes that gap:
//!
//! * an embedder registers a constructor under a stable string id
//!   ([`register_scheduler`] / [`register_seed_policy`] /
//!   [`register_backend`]),
//! * the `Extension(id)` variants of the spec enums select it (directly,
//!   or via [`crate::builder::CampaignBuilder`]'s `*_ctor` conveniences),
//! * snapshots (format v3) persist the id plus an *opaque state blob*
//!   ([`crate::scheduler::Scheduler::state`] /
//!   [`crate::scheduler::PolicyState::Opaque`]), and resume hands the
//!   blob back to the registered constructor.
//!
//! The registry is process-global: ids registered once (typically at
//! program start) are visible to every campaign, which is exactly what
//! snapshot rehydration needs — the resuming process registers the same
//! extensions the snapshotting process did, and
//! [`crate::builder::CampaignBuilder::build`] validates up front that
//! every id a configuration (or a resumed snapshot) names is actually
//! resolvable, returning [`crate::builder::BuildError`] instead of
//! failing mid-campaign. Registering an id that already exists replaces
//! the previous constructor (the registry is open, not append-only).
//!
//! Constructors rather than instances: a campaign builds one scheduler
//! and one policy per *run* (and rebuilds them on every resume), and one
//! backend per *worker thread*, so what the registry stores must be a
//! factory. The scheduler/policy constructors receive `Some(blob)` when
//! rehydrating from a snapshot and `None` for a fresh campaign.
//!
//! ```
//! use dejavuzz::registry;
//! use dejavuzz::scheduler::RoundRobin;
//!
//! // A (trivial) custom scheduler: the built-in round robin under a
//! // custom id. Real extensions parse `state` to restore themselves.
//! registry::register_scheduler("docs-rr", |_state| Box::new(RoundRobin)).unwrap();
//! assert!(registry::scheduler_ctor("docs-rr").is_some());
//! assert!(registry::scheduler_ctor("never-registered").is_none());
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, OnceLock, RwLock};

use crate::backend::SimBackend;
use crate::scheduler::{Scheduler, SeedPolicy};

/// A scheduler factory: builds a fresh instance, restoring the opaque
/// snapshot state blob when one is given ([`Scheduler::state`] produced
/// it; `None` means a fresh campaign).
pub type SchedulerCtor = Arc<dyn Fn(Option<&[u8]>) -> Box<dyn Scheduler> + Send + Sync>;

/// A seed-policy factory: builds a fresh instance, restoring the opaque
/// snapshot state blob when one is given
/// ([`crate::scheduler::PolicyState::Opaque`] carried it).
pub type PolicyCtor = Arc<dyn Fn(Option<&[u8]>) -> Box<dyn SeedPolicy> + Send + Sync>;

/// A backend factory: builds one simulator instance per worker thread.
pub type BackendCtor = Arc<dyn Fn() -> Box<dyn SimBackend> + Send + Sync>;

/// Why a registration was refused.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RegistryError {
    /// The id is unusable as a persistent extension name.
    InvalidId {
        /// The offending id.
        id: String,
        /// What is wrong with it.
        reason: &'static str,
    },
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::InvalidId { id, reason } => {
                write!(f, "invalid extension id {id:?}: {reason}")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

#[derive(Default)]
struct Registry {
    schedulers: BTreeMap<String, SchedulerCtor>,
    policies: BTreeMap<String, PolicyCtor>,
    backends: BTreeMap<String, BackendCtor>,
}

fn registry() -> &'static RwLock<Registry> {
    static REGISTRY: OnceLock<RwLock<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| RwLock::new(Registry::default()))
}

/// Ids are persisted inside snapshot files and echoed in CLI labels, so
/// they must be stable, printable and unambiguous: non-empty ASCII
/// graphic characters, no whitespace, and no `:` (reserved for the
/// `ext:<id>` spelling of spec labels and `--scheduler ext:<id>` style
/// parsing).
pub(crate) fn validate_id(id: &str) -> Result<(), RegistryError> {
    let reason = if id.is_empty() {
        "must not be empty"
    } else if id.contains(':') {
        "must not contain ':' (reserved for the ext:<id> spelling)"
    } else if !id.chars().all(|c| c.is_ascii_graphic()) {
        "must be printable ASCII without whitespace"
    } else {
        return Ok(());
    };
    Err(RegistryError::InvalidId {
        id: id.to_string(),
        reason,
    })
}

/// Registers a custom [`Scheduler`] constructor under `id`, replacing any
/// previous registration of the same id. Selected by
/// [`crate::scheduler::SchedulerSpec::Extension`].
pub fn register_scheduler(
    id: &str,
    ctor: impl Fn(Option<&[u8]>) -> Box<dyn Scheduler> + Send + Sync + 'static,
) -> Result<(), RegistryError> {
    validate_id(id)?;
    let mut reg = registry().write().expect("registry poisoned");
    reg.schedulers.insert(id.to_string(), Arc::new(ctor));
    Ok(())
}

/// Registers a custom [`SeedPolicy`] constructor under `id`, replacing
/// any previous registration of the same id. Selected by
/// [`crate::scheduler::PolicySpec::Extension`].
pub fn register_seed_policy(
    id: &str,
    ctor: impl Fn(Option<&[u8]>) -> Box<dyn SeedPolicy> + Send + Sync + 'static,
) -> Result<(), RegistryError> {
    validate_id(id)?;
    let mut reg = registry().write().expect("registry poisoned");
    reg.policies.insert(id.to_string(), Arc::new(ctor));
    Ok(())
}

/// Registers a custom [`SimBackend`] constructor under `id`, replacing
/// any previous registration of the same id. Selected by
/// [`crate::backend::BackendSpec::Extension`].
pub fn register_backend(
    id: &str,
    ctor: impl Fn() -> Box<dyn SimBackend> + Send + Sync + 'static,
) -> Result<(), RegistryError> {
    validate_id(id)?;
    let mut reg = registry().write().expect("registry poisoned");
    reg.backends.insert(id.to_string(), Arc::new(ctor));
    Ok(())
}

/// Looks up a registered scheduler constructor.
pub fn scheduler_ctor(id: &str) -> Option<SchedulerCtor> {
    registry()
        .read()
        .expect("registry poisoned")
        .schedulers
        .get(id)
        .cloned()
}

/// Looks up a registered seed-policy constructor.
pub fn seed_policy_ctor(id: &str) -> Option<PolicyCtor> {
    registry()
        .read()
        .expect("registry poisoned")
        .policies
        .get(id)
        .cloned()
}

/// Looks up a registered backend constructor.
pub fn backend_ctor(id: &str) -> Option<BackendCtor> {
    registry()
        .read()
        .expect("registry poisoned")
        .backends
        .get(id)
        .cloned()
}

/// Ids of every registered scheduler extension, sorted (diagnostics and
/// `--help`-style listings).
pub fn registered_schedulers() -> Vec<String> {
    let reg = registry().read().expect("registry poisoned");
    reg.schedulers.keys().cloned().collect()
}

/// Ids of every registered seed-policy extension, sorted.
pub fn registered_seed_policies() -> Vec<String> {
    let reg = registry().read().expect("registry poisoned");
    reg.policies.keys().cloned().collect()
}

/// Ids of every registered backend extension, sorted.
pub fn registered_backends() -> Vec<String> {
    let reg = registry().read().expect("registry poisoned");
    reg.backends.keys().cloned().collect()
}

/// One selectable implementation in an introspection listing
/// ([`list_schedulers`] and friends; `dejavuzz-fuzz --list-extensions`
/// prints these). The id is spelled exactly as the CLI accepts it:
/// built-ins by their canonical short name, extensions as `ext:<id>`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExtensionInfo {
    /// The CLI spelling that selects this implementation.
    pub id: String,
    /// True for the closed built-ins, false for registry extensions.
    pub builtin: bool,
}

fn catalogue(builtins: &[&str], registered: Vec<String>) -> Vec<ExtensionInfo> {
    let mut out: Vec<ExtensionInfo> = builtins
        .iter()
        .map(|id| ExtensionInfo {
            id: (*id).to_string(),
            builtin: true,
        })
        .collect();
    out.extend(registered.into_iter().map(|id| ExtensionInfo {
        id: format!("ext:{id}"),
        builtin: false,
    }));
    out
}

/// Every selectable slot scheduler: the built-ins (`round`, `steal`)
/// followed by the registered extensions as `ext:<id>`, sorted within
/// each group.
pub fn list_schedulers() -> Vec<ExtensionInfo> {
    catalogue(&["round", "steal"], registered_schedulers())
}

/// Every selectable corpus seed policy: the built-ins (`energy`,
/// `favoured`) followed by the registered extensions as `ext:<id>`.
pub fn list_seed_policies() -> Vec<ExtensionInfo> {
    catalogue(&["energy", "favoured"], registered_seed_policies())
}

/// Every selectable simulation backend: the built-in spellings
/// (including the `proc:<inner>:<M>` pool wrapper template) followed by
/// the registered extensions as `ext:<id>`.
pub fn list_backends() -> Vec<ExtensionInfo> {
    catalogue(
        &[
            "behavioural",
            "netlist:small",
            "netlist:boom",
            "netlist:xiangshan",
            "proc:<inner>:<M>",
        ],
        registered_backends(),
    )
}

/// Every registered scenario template family, sorted by family id —
/// the built-ins ship pre-registered, embedder templates appear once
/// [`dejavuzz_scenarios::register_template`]ed.
pub fn list_scenarios() -> Vec<dejavuzz_scenarios::TemplateInfo> {
    dejavuzz_scenarios::list_templates()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{EnergyDecay, RoundRobin};

    #[test]
    fn invalid_ids_are_refused_with_reasons() {
        for (id, needle) in [
            ("", "must not be empty"),
            ("has space", "printable ASCII"),
            ("tab\there", "printable ASCII"),
            ("colon:id", "reserved"),
            ("ünïcode", "printable ASCII"),
        ] {
            let err = register_scheduler(id, |_| Box::new(RoundRobin)).unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "{id:?} gave {err}, wanted {needle:?}"
            );
        }
    }

    #[test]
    fn registration_resolves_and_replaces() {
        register_scheduler("reg-test-sched", |_| Box::new(RoundRobin)).unwrap();
        assert!(scheduler_ctor("reg-test-sched").is_some());
        assert!(scheduler_ctor("reg-test-sched-missing").is_none());
        // Re-registration replaces (the registry is open, not append-only).
        register_scheduler("reg-test-sched", |_| Box::new(RoundRobin)).unwrap();
        assert!(registered_schedulers().contains(&"reg-test-sched".to_string()));

        register_seed_policy("reg-test-pol", |_| Box::new(EnergyDecay)).unwrap();
        assert!(seed_policy_ctor("reg-test-pol").is_some());
        assert!(registered_seed_policies().contains(&"reg-test-pol".to_string()));

        register_backend("reg-test-be", || {
            Box::new(crate::backend::BehaviouralBackend::new(
                dejavuzz_uarch::boom_small(),
            ))
        })
        .unwrap();
        assert!(backend_ctor("reg-test-be").is_some());
        assert!(registered_backends().contains(&"reg-test-be".to_string()));
        assert!(backend_ctor("reg-test-be-missing").is_none());
    }
}
