//! `dejavuzz-simd` — the process-pool simulator worker.
//!
//! Spawned (never run by hand) by a `proc:<inner>:<M>` backend: speaks
//! the framed request/response protocol of `dejavuzz::procproto` on
//! stdin/stdout, building the inner backend named by the handshake and
//! serving one simulation per request until the embedder closes the
//! pipe. Diagnostics go to stderr, which the embedder inherits.

fn main() {
    let mut args = std::env::args().skip(1);
    if let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                println!(
                    "dejavuzz-simd: worker process for the proc:<inner>:<M> backend.\n\
                     Speaks framed simulation requests on stdin/stdout; spawned by\n\
                     dejavuzz-fuzz (or any embedder of dejavuzz::ProcBackend), not run\n\
                     by hand. It takes no arguments."
                );
                return;
            }
            other => {
                eprintln!("dejavuzz-simd: unexpected argument {other:?} (takes none)");
                std::process::exit(2);
            }
        }
    }
    if let Err(e) = dejavuzz::procbackend::serve_stdio() {
        eprintln!("dejavuzz-simd: {e}");
        std::process::exit(1);
    }
}
