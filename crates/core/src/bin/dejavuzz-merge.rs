//! `dejavuzz-merge` — unions shard snapshots from a multi-machine
//! campaign into one report.
//!
//! Each machine runs `dejavuzz-fuzz --shard N --seed <distinct> --snapshot
//! shardN.snap`; this tool merges the snapshot files: coverage is the
//! **exact union** of per-shard observations (`SharedCoverage` semantics,
//! never a pointwise sum), bug reports deduplicate by `dedup_key()`, and
//! plain counters (iterations, simulations, cycles) sum.
//!
//! ```sh
//! cargo run --release -p dejavuzz --bin dejavuzz-merge -- shard0.snap shard1.snap
//! ```

use dejavuzz::observer::json_str;
use dejavuzz::snapshot::{merge_snapshots, CampaignSnapshot};

/// Per-family rollup of the merged window stats: the Table-5 class of
/// each window type (which for scenario windows is the scenario family
/// id) with summed triggered/attempted counts and the deduplicated bugs
/// attributed to that class.
fn family_rollup(
    stats: &dejavuzz::campaign::CampaignStats,
) -> std::collections::BTreeMap<String, (usize, usize, usize)> {
    let mut families: std::collections::BTreeMap<String, (usize, usize, usize)> =
        std::collections::BTreeMap::new();
    for (wt, ws) in &stats.windows {
        let e = families.entry(wt.table5_class().to_string()).or_default();
        e.0 += ws.triggered;
        e.1 += ws.attempted;
    }
    for b in &stats.bugs {
        // Bugs key by the same class; count them even when no shard's
        // window table carries the class (merged heterogeneous runs).
        families
            .entry(b.window_type.table5_class().to_string())
            .or_default()
            .2 += 1;
    }
    families
}

fn die(msg: std::fmt::Arguments<'_>) -> ! {
    eprintln!("dejavuzz-merge: {msg}");
    std::process::exit(2);
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "dejavuzz-merge — merge shard snapshots into one campaign report\n\n\
             usage: dejavuzz-merge [--json] SNAPSHOT [SNAPSHOT ...]\n\n\
             Coverage merges as the exact union of per-shard points (never a\n\
             pointwise sum), bugs deduplicate by (attack, window class,\n\
             component), counters sum, and the coverage curve is the pointwise\n\
             max over shards (a lower bound; the union curve is unknowable\n\
             after the fact). Decode failures (truncated, corrupted or\n\
             wrong-version snapshots) exit non-zero naming the file.\n\n\
             The report breaks windows down twice: per window type, and per\n\
             family (the Table-5 class — for scenario-template windows, the\n\
             scenario family id) with triggered/attempted/bug counts.\n\n\
             Shards fuzzed on a worker-process pool echo the pool geometry\n\
             in their backend label (proc:<inner>:<M>); shards differing\n\
             only in M merge with the usual backend-mismatch warning, since\n\
             pool size never changes results.\n\n\
             --json   one machine-readable JSON object on stdout (per-shard\n\
             \u{20}        summaries plus the merged report) instead of the text\n\
             \u{20}        report\n"
        );
        return;
    }
    // `--json` is consumed before the strict unknown-flag check so the
    // text path's behaviour (and output) is untouched by its existence.
    let json = match args.iter().position(|a| a == "--json") {
        Some(i) => {
            args.remove(i);
            true
        }
        None => false,
    };
    if let Some(unknown) = args.iter().find(|a| a.starts_with("--")) {
        die(format_args!("unknown flag {unknown:?}"));
    }
    if args.is_empty() {
        die(format_args!("no snapshot files given"));
    }

    let mut snaps = Vec::with_capacity(args.len());
    for p in &args {
        match CampaignSnapshot::load(std::path::Path::new(p)) {
            Ok(s) => snaps.push(s),
            Err(e) => die(format_args!("cannot load {p}: {e}")),
        }
    }
    let backend = snaps[0].backend.clone();
    let mut seen_shards = std::collections::HashSet::new();
    for (p, s) in args.iter().zip(&snaps) {
        if s.backend != backend {
            eprintln!(
                "dejavuzz-merge: warning: {p} was fuzzed on {} (first shard on {backend}) — \
                 merging coverage across different DUTs",
                s.backend
            );
        }
        if !seen_shards.insert(s.shard_id) {
            eprintln!(
                "dejavuzz-merge: warning: duplicate shard id {} ({p}) — summed counters \
                 (iterations, simulations, windows) will double-count",
                s.shard_id
            );
        }
    }

    if json {
        let merged = merge_snapshots(&snaps);
        let stats = &merged.stats;
        let shards: Vec<String> = args
            .iter()
            .zip(&snaps)
            .map(|(p, s)| {
                format!(
                    "{{\"shard\":{},\"path\":{},\"iterations\":{},\"points\":{},\
                     \"bugs\":{},\"backend\":{},\"seed\":{},\"workers\":{}}}",
                    s.shard_id,
                    json_str(p),
                    s.stats.iterations,
                    s.coverage.points(),
                    s.stats.bugs.len(),
                    json_str(&s.backend),
                    s.seed,
                    s.workers
                )
            })
            .collect();
        // NaN (no window triggered) is not a JSON number: emit null.
        let num = |v: f64| {
            if v.is_finite() {
                v.to_string()
            } else {
                "null".to_string()
            }
        };
        let windows: Vec<String> = stats
            .windows
            .iter()
            .map(|(wt, ws)| {
                format!(
                    "{{\"window\":{},\"triggered\":{},\"attempted\":{},\
                     \"mean_to\":{},\"mean_eto\":{}}}",
                    json_str(wt.name()),
                    ws.triggered,
                    ws.attempted,
                    num(ws.mean_to()),
                    num(ws.mean_eto())
                )
            })
            .collect();
        let families: Vec<String> = family_rollup(stats)
            .iter()
            .map(|(fam, (triggered, attempted, bugs))| {
                format!(
                    "{{\"family\":{},\"triggered\":{},\"attempted\":{},\"bugs\":{}}}",
                    json_str(fam),
                    triggered,
                    attempted,
                    bugs
                )
            })
            .collect();
        let bugs: Vec<String> = stats
            .bugs
            .iter()
            .map(|b| json_str(&b.to_string()))
            .collect();
        println!(
            "{{\"shards\":[{}],\"merged\":{{\"iterations\":{},\"failed_runs\":{},\
             \"simulations\":{},\"simulated_cycles\":{},\"coverage_points\":{},\
             \"summed_points\":{},\"windows\":[{}],\"families\":[{}],\"bugs\":[{}]}}}}",
            shards.join(","),
            stats.iterations,
            stats.failed_runs,
            stats.sim_runs,
            stats.sim_cycles,
            merged.coverage.points(),
            merged.summed_points,
            windows.join(","),
            families.join(","),
            bugs.join(",")
        );
        return;
    }

    println!("merging {} shard snapshot(s)\n", snaps.len());
    for (p, s) in args.iter().zip(&snaps) {
        println!(
            "  shard {:<3} {p}: {} iterations, {} points, {} bug(s) ({}, seed {}, {} worker(s))",
            s.shard_id,
            s.stats.iterations,
            s.coverage.points(),
            s.stats.bugs.len(),
            s.backend,
            s.seed,
            s.workers
        );
    }

    let merged = merge_snapshots(&snaps);
    let stats = &merged.stats;
    println!("\nmerged:");
    println!("iterations:       {}", stats.iterations);
    if stats.failed_runs > 0 {
        println!("failed runs:      {} (backend errors)", stats.failed_runs);
    }
    println!("simulations:      {}", stats.sim_runs);
    println!("simulated cycles: {}", stats.sim_cycles);
    println!(
        "coverage points:  {} (exact union; per-shard counts sum to {})",
        merged.coverage.points(),
        merged.summed_points
    );
    println!("\nwindows:");
    for (wt, ws) in &stats.windows {
        println!(
            "  {:<28} {:>3}/{:<3}  TO {:>6.1}  ETO {:>5.1}",
            wt.name(),
            ws.triggered,
            ws.attempted,
            ws.mean_to(),
            ws.mean_eto()
        );
    }
    println!("\nfamilies:");
    for (fam, (triggered, attempted, bugs)) in &family_rollup(stats) {
        println!("  {fam:<16} {triggered:>3}/{attempted:<3}  bugs {bugs:>2}");
    }
    println!("\nbugs ({}, deduplicated across shards):", stats.bugs.len());
    for b in &stats.bugs {
        println!("  {b}");
    }
}
