//! The DejaVuzz command-line fuzzer: the paper's fuzzing-pipeline entry
//! point (§5), wrapping the shared-corpus [`dejavuzz::executor`].
//!
//! ```sh
//! cargo run --release -p dejavuzz --bin dejavuzz-fuzz -- \
//!     --core xiangshan --iters 100 --workers 4 --seed 7
//! cargo run --release -p dejavuzz --bin dejavuzz-fuzz -- \
//!     --backend netlist:small --iters 20
//! ```

use dejavuzz::backend::BackendSpec;
use dejavuzz::campaign::FuzzerOptions;
use dejavuzz::executor;
use dejavuzz_uarch::{boom_small, xiangshan_minimal};

fn arg<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "dejavuzz-fuzz — transient-execution-bug fuzzing campaign\n\n\
             --core boom|xiangshan   behavioural DUT model (default boom)\n\
             --backend behavioural|netlist[:small|boom|xiangshan]\n\
             \u{20}                        simulation backend (default behavioural)\n\
             --iters N               iterations per worker (default 50)\n\
             --workers N             pipeline workers sharing one corpus (default 1)\n\
             --threads N             alias for --workers (historical name)\n\
             --seed N                RNG seed (default 42)\n\
             --variant full|star|minus|noliveness\n"
        );
        return;
    }
    let core = arg::<String>(&args, "--core", "boom".into());
    let cfg = match core.as_str() {
        "xiangshan" => xiangshan_minimal(),
        _ => boom_small(),
    };
    let backend = arg::<String>(&args, "--backend", "behavioural".into());
    let backend = match BackendSpec::parse(&backend, cfg) {
        Ok(spec) => spec,
        Err(e) => {
            eprintln!("dejavuzz-fuzz: {e}");
            std::process::exit(2);
        }
    };
    let iters = arg(&args, "--iters", 50usize);
    let workers = arg(&args, "--workers", arg(&args, "--threads", 1usize)).max(1);
    let seed = arg(&args, "--seed", 42u64);
    let variant = arg::<String>(&args, "--variant", "full".into());
    let opts = match variant.as_str() {
        "star" => FuzzerOptions::dejavuzz_star(),
        "minus" => FuzzerOptions::dejavuzz_minus(),
        "noliveness" => FuzzerOptions::no_liveness(),
        _ => FuzzerOptions::default(),
    };

    // The behavioural banner keeps its historical form so default-path
    // output stays byte-identical across the backend refactor.
    let banner = match &backend {
        BackendSpec::Behavioural(cfg) => cfg.name.to_string(),
        other => other.label(),
    };
    println!(
        "fuzzing {banner} ({variant}) — {iters} iters x {workers} worker(s), shared corpus, seed {seed}\n"
    );
    let start = std::time::Instant::now();
    let report = executor::run_with_backend(backend, opts, workers, iters * workers, seed);
    let stats = &report.stats;
    let elapsed = start.elapsed().as_secs_f64();
    println!("elapsed:          {elapsed:.1}s");
    println!(
        "throughput:       {:.1} seeds/sec",
        stats.iterations as f64 / elapsed.max(1e-9)
    );
    println!("iterations:       {}", stats.iterations);
    if stats.failed_runs > 0 {
        println!("failed runs:      {} (backend errors)", stats.failed_runs);
    }
    println!("simulations:      {}", stats.sim_runs);
    println!("simulated cycles: {}", stats.sim_cycles);
    println!("coverage points:  {} (exact union)", stats.coverage());
    println!(
        "corpus retained:  {} (evicted {})",
        report.corpus_retained, report.corpus_evicted
    );
    println!("first bug:        {:?}", stats.first_bug_iteration);
    println!("\nworkers:");
    for w in &report.workers {
        println!(
            "  #{:<3} {:>5} iterations, {:>5} points observed",
            w.worker,
            w.iterations,
            w.observed.points()
        );
    }
    println!("\nwindows:");
    for (wt, ws) in &stats.windows {
        println!(
            "  {:<28} {:>3}/{:<3}  TO {:>6.1}  ETO {:>5.1}",
            wt.name(),
            ws.triggered,
            ws.attempted,
            ws.mean_to(),
            ws.mean_eto()
        );
    }
    println!("\nbugs ({}):", stats.bugs.len());
    for b in &stats.bugs {
        println!("  {b}");
    }
}
