//! The DejaVuzz command-line fuzzer: the paper's fuzzing-pipeline entry
//! point (§5), wrapping the shared-corpus [`dejavuzz::executor`].
//!
//! ```sh
//! cargo run --release -p dejavuzz --bin dejavuzz-fuzz -- \
//!     --core xiangshan --iters 100 --workers 4 --seed 7
//! cargo run --release -p dejavuzz --bin dejavuzz-fuzz -- \
//!     --backend netlist:small --iters 20
//! # Checkpointed campaign, halted early, then resumed to completion:
//! cargo run --release -p dejavuzz --bin dejavuzz-fuzz -- \
//!     --iters 50 --workers 4 --snapshot camp.snap --snapshot-every 1 --halt-after 80
//! cargo run --release -p dejavuzz --bin dejavuzz-fuzz -- \
//!     --resume camp.snap --iters 50
//! ```
//!
//! All persistence chatter (checkpoint/resume notes) goes to stderr;
//! stdout carries only the campaign report — rendered by the library's
//! [`TextObserver`] (byte-identical to the historical inline report; the
//! CI resume smoke diffs exactly this) or, under `--telemetry json`, by
//! [`JsonLinesObserver`] as one JSON object per campaign event.

use dejavuzz::backend::BackendSpec;
use dejavuzz::builder::CampaignBuilder;
use dejavuzz::campaign::FuzzerOptions;
use dejavuzz::gossip::{shared_link, GossipLink, MultiLink, UnixGossipLink};
use dejavuzz::observer::{CampaignObserver, JsonLinesObserver, TextObserver};
use dejavuzz::scheduler::{PolicySpec, SchedulerSpec};
use dejavuzz::snapshot::CampaignSnapshot;
use dejavuzz_uarch::{boom_small, xiangshan_minimal};

fn die(msg: std::fmt::Arguments<'_>) -> ! {
    eprintln!("dejavuzz-fuzz: {msg}");
    eprintln!("dejavuzz-fuzz: run with --help for usage");
    std::process::exit(2);
}

/// Strict optional flag lookup: a present flag must have a parseable
/// value — `--iters abc` is an error naming the flag, never a silent
/// fall-through to the default. A following `--flag` token is a missing
/// value, not a value: `--snapshot --halt-after 80` must not write a
/// snapshot to a file literally named "--halt-after".
fn opt_arg<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    let i = args.iter().position(|a| a == flag)?;
    let Some(v) = args.get(i + 1).filter(|v| !v.starts_with("--")) else {
        die(format_args!("{flag} requires a value"));
    };
    match v.parse() {
        Ok(v) => Some(v),
        Err(_) => die(format_args!("invalid value {v:?} for {flag}")),
    }
}

fn arg<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    opt_arg(args, flag).unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "dejavuzz-fuzz — transient-execution-bug fuzzing campaign\n\n\
             --core boom|xiangshan   behavioural DUT model (default boom)\n\
             --backend behavioural|netlist[:small|boom|xiangshan]|proc:<inner>:<M>\n\
             \u{20}                        simulation backend (default behavioural).\n\
             \u{20}                        proc:<inner>:<M> runs <inner> (e.g.\n\
             \u{20}                        netlist:boom) in a crash-isolated pool of M\n\
             \u{20}                        dejavuzz-simd worker processes; results stay\n\
             \u{20}                        byte-identical to in-process per (seed,\n\
             \u{20}                        workers, batch, lag), and a worker crash\n\
             \u{20}                        fails one run, never the campaign\n\
             --iters N               iterations per worker (default 50)\n\
             --workers N             pipeline workers sharing one corpus (default 1)\n\
             --threads N             alias for --workers (historical name)\n\
             --seed N                RNG seed (default 42)\n\
             --variant full|star|minus|noliveness\n\n\
             scheduling (see EXPERIMENTS.md \"Schedulers & seed policies\"):\n\
             --scheduler round|steal round = fixed per-worker batches (default);\n\
             \u{20}                        steal = idle workers claim pre-drawn slots\n\
             \u{20}                        from a shared queue — deterministic per\n\
             \u{20}                        (seed, workers) regardless of interleaving\n\
             --policy energy|favoured\n\
             \u{20}                        corpus pick policy: energy-decay roulette\n\
             \u{20}                        (default) or AFL-style favoured culling with\n\
             \u{20}                        per-window-type quotas\n\
             --scenarios F[,F]       enable scenario-template window families next to\n\
             \u{20}                        the eight built-in window types, each\n\
             \u{20}                        optionally parameterised:\n\
             \u{20}                        --scenarios zenbleed,nested-spec:depth=5\n\
             \u{20}                        (see EXPERIMENTS.md \"Scenario library\" and\n\
             \u{20}                        --list-extensions for the shipped families).\n\
             \u{20}                        Part of the replay identity: persisted in\n\
             \u{20}                        snapshots and adopted on --resume\n\
             --list-extensions       print every selectable scheduler, seed policy,\n\
             \u{20}                        backend and scenario family, then exit\n\
             --batch N               iteration slots per worker per round (default 4;\n\
             \u{20}                        at --batch 1 both schedulers are bit-identical)\n\
             --pipeline-lag N        cross-round steal pipeline (default 0 = barriered\n\
             \u{20}                        rounds, byte-identical to the classic steal\n\
             \u{20}                        mode). Any N >= 1 pre-draws the next round\n\
             \u{20}                        from feedback lagging one round behind, so\n\
             \u{20}                        stragglers never idle the pool; results are\n\
             \u{20}                        identical per (seed, workers, batch, lag) and\n\
             \u{20}                        for every lag >= 1. Requires --scheduler steal\n\n\
             checkpointing & sharding (see EXPERIMENTS.md):\n\
             --snapshot PATH         write campaign checkpoints to PATH (atomic\n\
             \u{20}                        write-rename; always written at run end)\n\
             --snapshot-every N      also checkpoint every N scheduler rounds (0 = off)\n\
             --snapshot-keep N       rotate periodic checkpoints into PATH.<iters>\n\
             \u{20}                        siblings, pruning all but the newest N (0 =\n\
             \u{20}                        overwrite one file; the end-of-run checkpoint\n\
             \u{20}                        always lands on PATH itself)\n\
             --halt-after N          stop gracefully at the first round boundary with\n\
             \u{20}                        >= N iterations done (pairs with --snapshot to\n\
             \u{20}                        emulate an interruption; resume finishes the run)\n\
             --resume PATH           continue a snapshot; adopts its workers/seed/batch,\n\
             \u{20}                        validates backend+variant, and reproduces the\n\
             \u{20}                        uninterrupted run bit-identically\n\
             --shard N               tag snapshots with a shard id for dejavuzz-merge\n\
             \u{20}                        (default 0)\n\n\
             fleet gossip (see EXPERIMENTS.md \"Fleet & gossip\"):\n\
             --peers SPEC[,SPEC]     gossip peers, each unix:PATH — a Unix socket\n\
             \u{20}                        served by dejavuzz-serve (or another fleet\n\
             \u{20}                        host). At every gossip boundary the campaign\n\
             \u{20}                        publishes its coverage delta + favoured seeds\n\
             \u{20}                        and imports queued peer frames as explicit\n\
             \u{20}                        peer_delta_imported / seed_imported events\n\
             --gossip-every N        rounds between gossip exchanges (default 1 when\n\
             \u{20}                        --peers is given; without --peers a warning is\n\
             \u{20}                        printed and the run is byte-identical to one\n\
             \u{20}                        without gossip)\n\n\
             telemetry (see EXPERIMENTS.md \"Embedding & telemetry\"):\n\
             --telemetry text|json   text = the classic campaign report (default);\n\
             \u{20}                        json = one JSON object per campaign event\n\
             \u{20}                        (round_started, slot_committed, coverage_gained,\n\
             \u{20}                        bug_found, snapshot_written, peer_delta_imported,\n\
             \u{20}                        seed_imported, campaign_finished) —\n\
             \u{20}                        byte-deterministic per (seed, workers)\n\
             --metrics-out PATH      write a JSON dump of the process metrics registry\n\
             \u{20}                        (counters, gauges, log-bucketed latency\n\
             \u{20}                        histograms — see EXPERIMENTS.md \"Observability\")\n\
             \u{20}                        at campaign end. Metrics live off the commit\n\
             \u{20}                        path: campaign stdout, results and snapshots\n\
             \u{20}                        are byte-identical with or without this flag\n\n\
             Flag values that fail to parse are an error (exit 2), never a\n\
             silent fallback to the default.\n"
        );
        return;
    }
    if args.iter().any(|a| a == "--list-extensions") {
        // One line per selectable implementation, grouped; scenario
        // families carry their description and parameter space. The
        // format is pinned by tests/cli.rs — machine-grepable, stable.
        println!("schedulers:");
        for e in dejavuzz::registry::list_schedulers() {
            println!("  {}", e.id);
        }
        println!("seed policies:");
        for e in dejavuzz::registry::list_seed_policies() {
            println!("  {}", e.id);
        }
        println!("backends:");
        for e in dejavuzz::registry::list_backends() {
            println!("  {}", e.id);
        }
        println!("scenarios:");
        for t in dejavuzz::registry::list_scenarios() {
            let params: Vec<String> = t
                .params
                .iter()
                .map(|p| format!("{}={} in [{}, {}]", p.name, p.default, p.min, p.max))
                .collect();
            if params.is_empty() {
                println!("  {} — {}", t.family, t.describe);
            } else {
                println!("  {} — {} ({})", t.family, t.describe, params.join(", "));
            }
        }
        return;
    }
    let core = arg::<String>(&args, "--core", "boom".into());
    let cfg = match core.as_str() {
        "xiangshan" => xiangshan_minimal(),
        "boom" => boom_small(),
        other => die(format_args!(
            "unknown core {other:?} (expected boom|xiangshan)"
        )),
    };
    let backend = arg::<String>(&args, "--backend", "behavioural".into());
    let backend = match BackendSpec::parse(&backend, cfg) {
        Ok(spec) => spec,
        Err(e) => die(format_args!("{e}")),
    };
    let variant = arg::<String>(&args, "--variant", "full".into());
    let opts = match variant.as_str() {
        "full" => FuzzerOptions::default(),
        "star" => FuzzerOptions::dejavuzz_star(),
        "minus" => FuzzerOptions::dejavuzz_minus(),
        "noliveness" => FuzzerOptions::no_liveness(),
        other => die(format_args!(
            "unknown variant {other:?} (expected full|star|minus|noliveness)"
        )),
    };
    let iters = arg(&args, "--iters", 50usize);
    let mut workers = arg(&args, "--workers", arg(&args, "--threads", 1usize)).max(1);
    let mut seed = arg(&args, "--seed", 42u64);
    let batch = arg(&args, "--batch", 4usize);
    let scheduler = match SchedulerSpec::parse(&arg::<String>(&args, "--scheduler", "round".into()))
    {
        Ok(s) => s,
        Err(e) => die(format_args!("{e}")),
    };
    let policy = match PolicySpec::parse(&arg::<String>(&args, "--policy", "energy".into())) {
        Ok(p) => p,
        Err(e) => die(format_args!("{e}")),
    };
    let scenarios: Vec<String> = match opt_arg::<String>(&args, "--scenarios") {
        Some(list) => {
            let specs: Vec<String> = list
                .split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect();
            if specs.is_empty() {
                die(format_args!(
                    "--scenarios requires at least one scenario family"
                ));
            }
            specs
        }
        None => Vec::new(),
    };
    let pipeline_lag = arg(&args, "--pipeline-lag", 0usize);
    let shard = arg(&args, "--shard", 0u32);
    let gossip_every = opt_arg::<usize>(&args, "--gossip-every");
    let peers = opt_arg::<String>(&args, "--peers");
    let snapshot_path = opt_arg::<String>(&args, "--snapshot");
    let snapshot_every = arg(&args, "--snapshot-every", 0usize);
    let snapshot_keep = arg(&args, "--snapshot-keep", 0usize);
    let halt_after = opt_arg::<usize>(&args, "--halt-after");
    let resume_path = opt_arg::<String>(&args, "--resume");
    let metrics_out = opt_arg::<String>(&args, "--metrics-out");
    let telemetry = arg::<String>(&args, "--telemetry", "text".into());
    if telemetry != "text" && telemetry != "json" {
        die(format_args!(
            "unknown telemetry mode {telemetry:?} (expected text|json)"
        ));
    }

    // A resumed campaign's geometry and scheduling configuration come
    // from the snapshot: workers, seed, batch, scheduler and policy are
    // all part of its replay identity.
    let resume = resume_path.map(|p| {
        let path = std::path::Path::new(&p);
        match CampaignSnapshot::load(path) {
            Ok(snap) => {
                eprintln!(
                    "dejavuzz-fuzz: resuming shard {} at iteration {} from {p} \
                     ({} worker(s), seed {}, scheduler {}, policy {})",
                    snap.shard_id,
                    snap.completed,
                    snap.workers,
                    snap.seed,
                    snap.scheduler.label(),
                    snap.policy.label(),
                );
                workers = snap.workers;
                seed = snap.seed;
                snap
            }
            Err(e) => die(format_args!("cannot resume from {p}: {e}")),
        }
    });

    // Scheduling chatter goes to stderr like the persistence notes, so
    // the default run's stdout stays byte-identical across flags. A
    // resumed campaign adopts the snapshot's scheduler/policy (already
    // reported by the resume note above) — announcing the flag values
    // here would claim a configuration the run does not use, so instead
    // warn when explicit flags are being overridden.
    if let Some(snap) = &resume {
        let explicit = |flag: &str| opt_arg::<String>(&args, flag).is_some();
        if explicit("--scheduler") && scheduler != snap.scheduler {
            eprintln!(
                "dejavuzz-fuzz: warning: --scheduler {} ignored; resume adopts the \
                 snapshot's scheduler ({})",
                scheduler.label(),
                snap.scheduler.label()
            );
        }
        if explicit("--policy") && policy != snap.policy {
            eprintln!(
                "dejavuzz-fuzz: warning: --policy {} ignored; resume adopts the \
                 snapshot's policy ({})",
                policy.label(),
                snap.policy.label()
            );
        }
        if explicit("--batch") && batch != snap.batch {
            eprintln!(
                "dejavuzz-fuzz: warning: --batch {batch} ignored; resume adopts the \
                 snapshot's batch size ({})",
                snap.batch
            );
        }
        if explicit("--pipeline-lag") && pipeline_lag != snap.pipeline_lag {
            eprintln!(
                "dejavuzz-fuzz: warning: --pipeline-lag {pipeline_lag} ignored; resume \
                 adopts the snapshot's pipeline lag ({})",
                snap.pipeline_lag
            );
        }
        if explicit("--scenarios") && scenarios != snap.scenarios {
            eprintln!(
                "dejavuzz-fuzz: warning: --scenarios {} ignored; resume adopts the \
                 snapshot's scenarios ({})",
                scenarios.join(","),
                if snap.scenarios.is_empty() {
                    "none".to_string()
                } else {
                    snap.scenarios.join(",")
                }
            );
        }
    } else if scheduler != SchedulerSpec::RoundRobin || policy != PolicySpec::EnergyDecay {
        let lag_note = if pipeline_lag > 0 {
            format!(", pipeline lag {pipeline_lag}")
        } else {
            String::new()
        };
        eprintln!(
            "dejavuzz-fuzz: scheduler {}, seed policy {}{lag_note}",
            scheduler.label(),
            policy.label()
        );
    }
    // Scenario chatter likewise goes to stderr: a scenarios-off run's
    // stdout stays byte-identical to one that never saw the flag.
    if resume.is_none() && !scenarios.is_empty() {
        eprintln!("dejavuzz-fuzz: scenarios {}", scenarios.join(","));
    }

    // Fleet wiring: one UnixGossipLink per peer spec, fanned out through
    // a MultiLink. Connection failures are configuration errors (exit 2);
    // a peer dying *mid-run* only warns and the campaign continues solo.
    // Gossip chatter goes to stderr: a no-peer run's stdout (and its
    // snapshots) stay byte-identical to a run without these flags — the
    // CI fleet smoke diffs exactly that.
    let gossip_link = match &peers {
        Some(specs) => {
            let mut links: Vec<Box<dyn GossipLink>> = Vec::new();
            for spec in specs.split(',') {
                let Some(path) = spec.strip_prefix("unix:") else {
                    die(format_args!(
                        "unknown peer spec {spec:?} (expected unix:PATH)"
                    ));
                };
                match UnixGossipLink::connect(std::path::Path::new(path), shard) {
                    Ok(link) => links.push(Box::new(link)),
                    Err(e) => die(format_args!("cannot connect to peer {spec:?}: {e}")),
                }
            }
            eprintln!(
                "dejavuzz-fuzz: shard {shard} gossiping every {} round(s) with {} peer(s)",
                gossip_every.unwrap_or(1),
                links.len()
            );
            Some(shared_link(MultiLink::new(links)))
        }
        None => {
            if let Some(every) = gossip_every {
                eprintln!(
                    "dejavuzz-fuzz: warning: --gossip-every {every} ignored; no --peers given"
                );
            }
            None
        }
    };

    let mut builder = CampaignBuilder::new()
        .backend(backend.clone())
        .options(opts)
        .workers(workers)
        .seed(seed)
        .batch(batch)
        .pipeline_lag(pipeline_lag)
        .scheduler(scheduler)
        .seed_policy(policy)
        .shard_id(shard)
        .scenarios(&scenarios)
        .snapshot_every(snapshot_every)
        .snapshot_keep(snapshot_keep);
    if let Some(path) = &snapshot_path {
        builder = builder.snapshot_path(path);
    }
    if let Some(halt) = halt_after {
        builder = builder.halt_after(halt);
    }
    if let Some(snap) = resume {
        builder = builder.resume(snap);
    }
    if let Some(link) = gossip_link {
        builder = builder.gossip(link).gossip_every(gossip_every.unwrap_or(1));
    }
    let orch = match builder.build() {
        Ok(orch) => orch,
        Err(e) => die(format_args!("{e}")),
    };

    // The behavioural banner keeps its historical form so default-path
    // output stays byte-identical across the backend refactor.
    let banner = match &backend {
        BackendSpec::Behavioural(cfg) => cfg.name.to_string(),
        other => other.label(),
    };
    let mut observers: Vec<Box<dyn CampaignObserver>> = match telemetry.as_str() {
        "json" => vec![Box::new(JsonLinesObserver::stdout())],
        _ => vec![Box::new(TextObserver::stdout().with_banner(format!(
            "fuzzing {banner} ({variant}) — {iters} iters x {workers} worker(s), \
             shared corpus, seed {seed}\n"
        )))],
    };
    let (report, _) = orch.run_observed(iters * workers, &mut observers);
    let stats = &report.stats;
    // Report what is actually on disk, not what we hoped to write: a
    // failed checkpoint (disk full, unwritable path) already warned on
    // stderr mid-run, and claiming success here would contradict it.
    if let Some(path) = &snapshot_path {
        match CampaignSnapshot::load(std::path::Path::new(path)) {
            Ok(s) if s.completed == stats.iterations => eprintln!(
                "dejavuzz-fuzz: snapshot at iteration {} written to {path}",
                s.completed
            ),
            Ok(s) => eprintln!(
                "dejavuzz-fuzz: warning: snapshot at {path} is stale (iteration {} of {}) — \
                 the final checkpoint write failed",
                s.completed, stats.iterations
            ),
            Err(e) => eprintln!("dejavuzz-fuzz: warning: snapshot at {path} is unusable: {e}"),
        }
    }
    // The metrics dump is observability output, not campaign state: it
    // is written after the run, its chatter goes to stderr, and a failed
    // write warns rather than failing the campaign (the results above
    // are already complete and correct).
    if let Some(path) = &metrics_out {
        let json = dejavuzz::metrics::registry_json();
        match std::fs::write(path, json) {
            Ok(()) => eprintln!("dejavuzz-fuzz: metrics written to {path}"),
            Err(e) => {
                eprintln!("dejavuzz-fuzz: warning: cannot write metrics to {path}: {e}")
            }
        }
    }
}
