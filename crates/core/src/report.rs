//! Bug reports: the classification scheme of Table 5.

use crate::gen::WindowType;

/// Attack family (Table 5's first column).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AttackType {
    /// The secret is architecturally inaccessible (permission revoked);
    /// the window leaks it across the privilege boundary.
    Meltdown,
    /// The secret is accessible to the victim domain; the window leaks it
    /// through speculative side effects.
    Spectre,
}

impl AttackType {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            AttackType::Meltdown => "Meltdown",
            AttackType::Spectre => "Spectre",
        }
    }
}

/// Where the leaked secret was observed (Table 5's "Encoded Timing
/// Component" column).
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LeakChannel {
    /// A live tainted sink in a microarchitectural component
    /// (dcache/icache/tlb/btb/ras/loop/lfb/…).
    Encoded {
        /// Module owning the sink.
        module: &'static str,
    },
    /// A constant-time violation attributed to a contended resource
    /// (lsu/fpu/icache port contention).
    Timing {
        /// The contended resource.
        resource: &'static str,
    },
}

impl LeakChannel {
    /// The component mnemonic as Table 5 prints it.
    pub fn component(&self) -> &'static str {
        match self {
            LeakChannel::Encoded { module } => module,
            LeakChannel::Timing { resource } => resource,
        }
    }
}

/// One reported transient-execution vulnerability.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BugReport {
    /// Core the bug was found on.
    pub core: &'static str,
    /// Attack family.
    pub attack: AttackType,
    /// The transient-window category that opened the window.
    pub window_type: WindowType,
    /// The leaking channel.
    pub channel: LeakChannel,
    /// Campaign iteration that found it.
    pub iteration: usize,
}

impl BugReport {
    /// A stable deduplication key: Table 5 aggregates by (attack, window
    /// class, component).
    pub fn dedup_key(&self) -> (AttackType, &'static str, &'static str) {
        (
            self.attack,
            self.window_type.table5_class(),
            self.channel.component(),
        )
    }
}

impl std::fmt::Display for BugReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] {} via {} window -> {}",
            self.core,
            self.attack.name(),
            self.window_type.table5_class(),
            self.channel.component()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_key_aggregates_like_table5() {
        let a = BugReport {
            core: "BOOM",
            attack: AttackType::Meltdown,
            window_type: WindowType::MemPageFault,
            channel: LeakChannel::Encoded { module: "dcache" },
            iteration: 3,
        };
        let b = BugReport {
            core: "BOOM",
            attack: AttackType::Meltdown,
            window_type: WindowType::MemMisalign, // same class: mem-excp
            channel: LeakChannel::Encoded { module: "dcache" },
            iteration: 9,
        };
        assert_eq!(a.dedup_key(), b.dedup_key());
    }

    #[test]
    fn display_is_reportable() {
        let r = BugReport {
            core: "XiangShan",
            attack: AttackType::Spectre,
            window_type: WindowType::BranchMispredict,
            channel: LeakChannel::Timing { resource: "fpu" },
            iteration: 1,
        };
        let s = r.to_string();
        assert!(s.contains("XiangShan") && s.contains("Spectre") && s.contains("fpu"));
    }
}
