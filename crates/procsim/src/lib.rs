//! Crash-isolated subprocess worker pools over a framed stdio protocol.
//!
//! This crate is the *transport* half of the process-pool simulator
//! backend: it knows how to spawn worker processes, speak
//! length-prefixed request/response frames over their stdin/stdout
//! (reusing the checksummed [`dejavuzz_persist::frame`] envelope), and
//! keep a pool of `M` such workers serving a shared request queue —
//! respawning, with bounded backoff, any worker that segfaults, gets
//! OOM-killed, or answers with a malformed frame. Payloads are opaque
//! byte vectors; the typed protocol (what a request *means*) lives with
//! the embedder — for DejaVuzz, in `dejavuzz::procbackend`.
//!
//! Design constraints, in order:
//!
//! * **A worker death is a request error, never a pool death.** Every
//!   failure mode of a child process — spawn failure, pipe closed
//!   mid-write, truncated reply, checksum mismatch — surfaces as a
//!   [`ProcError`] on the one request that hit it. The pool respawns
//!   the worker (bounded attempts, doubling backoff) and retries the
//!   request once on the fresh process; only a second failure reaches
//!   the caller.
//! * **Requests must be pure.** The retry-on-respawn is only sound
//!   because the embedder's requests are stateless: any worker must
//!   produce the same reply bytes for the same request bytes. The
//!   handshake enforces the observable half of this — a respawned
//!   worker must answer the handshake byte-identically to the original
//!   pool, or the respawn fails with [`ProcError::HandshakeMismatch`].
//! * **Blocking, caller-threaded dispatch.** [`Pool::request`] blocks
//!   the calling thread until its reply arrives; concurrency comes from
//!   many caller threads sharing the pool. An in-flight table tracks
//!   which worker is serving which request id for error attribution and
//!   the [`Pool::in_flight`] gauge.

mod child;
mod pool;

pub use child::{read_frame, seal_frame, write_frame, ChildProc};
pub use pool::{Pool, PoolOptions};

use std::fmt;

/// Frame magic for the worker protocol. Distinct from the snapshot and
/// gossip magics so a frame fed to the wrong decoder fails loudly with
/// `BadMagic` instead of misparsing.
pub const PROC_MAGIC: [u8; 8] = *b"DJVZPROC";

/// Version of the frame envelope this build speaks.
pub const PROC_VERSION: u32 = 1;

/// Everything that can go wrong between the pool and a worker process.
///
/// `Clone + PartialEq` so embedders can store these in result types that
/// are themselves comparable (the DejaVuzz campaign pins error strings
/// in its deterministic telemetry).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProcError {
    /// The worker binary could not be spawned at all.
    Spawn {
        /// The program we tried to execute.
        program: String,
        /// The OS error.
        detail: String,
    },
    /// The worker died or closed its pipes mid-request (segfault,
    /// OOM-kill, clean-but-early exit).
    WorkerLost {
        /// What the transport observed.
        detail: String,
    },
    /// The worker replied with bytes that are not a valid frame
    /// (truncated or corrupt length prefix, bad magic, checksum
    /// mismatch).
    BadFrame {
        /// The envelope decoder's diagnosis.
        detail: String,
    },
    /// A respawned worker answered the handshake differently from the
    /// pool's original workers — it is not serving the same protocol
    /// and must not serve retried requests.
    HandshakeMismatch,
    /// The pool is shutting down and no longer accepts requests.
    Closed,
}

impl fmt::Display for ProcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProcError::Spawn { program, detail } => {
                write!(f, "cannot spawn worker {program:?}: {detail}")
            }
            ProcError::WorkerLost { detail } => write!(f, "worker lost: {detail}"),
            ProcError::BadFrame { detail } => write!(f, "malformed reply frame: {detail}"),
            ProcError::HandshakeMismatch => write!(
                f,
                "respawned worker answered the handshake differently from the original pool"
            ),
            ProcError::Closed => write!(f, "worker pool is shut down"),
        }
    }
}

impl std::error::Error for ProcError {}
