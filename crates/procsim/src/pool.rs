//! The M-way worker pool: callers check an idle worker process out of a
//! shared rack, drive the framed round trip on their own thread, and
//! check it back in — with respawn-and-retry crash isolation.
//!
//! The checkout model (rather than a request queue served by dedicated
//! pump threads) keeps the per-RPC overhead to two uncontended mutex
//! acquisitions: the calling thread blocks directly on the worker's
//! pipe, so a request costs exactly one cross-process round trip with
//! no intra-process thread handoffs on top.

use std::collections::HashMap;
use std::path::PathBuf;
use std::process::Command;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Duration;

use crate::child::ChildProc;
use crate::ProcError;

/// Respawn attempts per incident before the failure is surfaced.
const RESPAWN_ATTEMPTS: u32 = 3;

/// Backoff before the second respawn attempt; doubles per attempt.
const RESPAWN_BACKOFF: Duration = Duration::from_millis(10);

/// How a pool spawns (and respawns) its worker processes.
#[derive(Clone, Debug)]
pub struct PoolOptions {
    /// The worker binary.
    pub program: PathBuf,
    /// Arguments passed to every worker.
    pub args: Vec<String>,
    /// Environment set on every worker (inheriting the parent's).
    pub envs: Vec<(String, String)>,
    /// Handshake request sent to every spawned worker before it serves.
    /// The first worker's reply is the pool's pinned protocol identity:
    /// [`Pool::spawn`] returns it, and every later spawn (including
    /// respawns) must answer byte-identically.
    pub handshake: Vec<u8>,
    /// Environment variable set (to the running respawn ordinal, from
    /// `"1"`) on *respawned* workers only — lets crash-injection
    /// harnesses distinguish a retry process from a first spawn.
    pub respawn_env: Option<String>,
}

impl PoolOptions {
    fn command(&self, respawn_ordinal: u64) -> Command {
        let mut cmd = Command::new(&self.program);
        cmd.args(&self.args);
        for (k, v) in &self.envs {
            cmd.env(k, v);
        }
        if respawn_ordinal > 0 {
            if let Some(var) = &self.respawn_env {
                cmd.env(var, respawn_ordinal.to_string());
            }
        }
        cmd
    }
}

/// One worker process plus its stable pool index (survives respawns).
struct Worker {
    index: usize,
    child: ChildProc,
}

/// The rack of idle workers plus the closed flag, under one lock.
struct Rack {
    idle: Vec<Worker>,
    closed: bool,
}

/// State shared between the pool handle and outstanding checkouts.
struct Shared {
    rack: Mutex<Rack>,
    available: Condvar,
    /// Request id → index of the worker currently serving it. The error
    /// attribution and [`Pool::in_flight`] source of truth.
    in_flight: Mutex<HashMap<u64, usize>>,
    /// Workers respawned over the pool's lifetime (successful respawns).
    respawns: AtomicU64,
    /// Monotonic request id source for untagged requests.
    next_id: AtomicU64,
}

/// A pool of `M` worker processes serving framed byte requests. See the
/// crate docs for the crash-isolation and purity contracts.
pub struct Pool {
    shared: Arc<Shared>,
    opts: PoolOptions,
    expected_ack: Vec<u8>,
    workers: usize,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("workers", &self.workers)
            .field("in_flight", &self.in_flight())
            .field("respawns", &self.respawns())
            .finish()
    }
}

/// Returns a checked-out worker to the rack on every exit path (success,
/// error, unwind), so a panicking caller can never strand a pool slot.
struct Checkout<'a> {
    shared: &'a Shared,
    worker: Option<Worker>,
}

impl std::ops::Deref for Checkout<'_> {
    type Target = Worker;
    fn deref(&self) -> &Worker {
        self.worker.as_ref().expect("worker present until drop")
    }
}

impl std::ops::DerefMut for Checkout<'_> {
    fn deref_mut(&mut self) -> &mut Worker {
        self.worker.as_mut().expect("worker present until drop")
    }
}

impl Drop for Checkout<'_> {
    fn drop(&mut self) {
        let worker = self.worker.take().expect("worker present until drop");
        let mut rack = self.shared.rack.lock().expect("pool rack poisoned");
        if rack.closed {
            return; // dropping the Worker kills the process
        }
        rack.idle.push(worker);
        drop(rack);
        self.shared.available.notify_one();
    }
}

impl Pool {
    /// Spawns `workers` processes and handshakes each; returns the pool
    /// plus the (identical) handshake reply, which the embedder decodes
    /// for protocol/metadata validation. Any spawn or handshake failure
    /// fails the whole call — a pool either starts complete or not at
    /// all (this is the build-time validation path: a missing binary or
    /// a worker that rejects the configuration is a structured error
    /// before any campaign work starts).
    pub fn spawn(opts: PoolOptions, workers: usize) -> Result<(Pool, Vec<u8>), ProcError> {
        assert!(workers >= 1, "a pool needs at least one worker");
        let mut idle = Vec::with_capacity(workers);
        let mut ack: Option<Vec<u8>> = None;
        for index in 0..workers {
            let mut child = ChildProc::spawn(&mut opts.command(0))?;
            let reply = child.request(&opts.handshake)?;
            match &ack {
                None => ack = Some(reply),
                Some(first) if *first == reply => {}
                Some(_) => return Err(ProcError::HandshakeMismatch),
            }
            idle.push(Worker { index, child });
        }
        let ack = ack.expect("workers >= 1");
        let shared = Arc::new(Shared {
            rack: Mutex::new(Rack {
                idle,
                closed: false,
            }),
            available: Condvar::new(),
            in_flight: Mutex::new(HashMap::new()),
            respawns: AtomicU64::new(0),
            next_id: AtomicU64::new(0),
        });
        Ok((
            Pool {
                shared,
                opts,
                expected_ack: ack.clone(),
                workers,
            },
            ack,
        ))
    }

    /// Submits a request and blocks until its reply (or error) arrives.
    /// The auto-assigned request id only matters for error attribution;
    /// use [`Pool::request_tagged`] to key the in-flight table yourself.
    pub fn request(&self, payload: Vec<u8>) -> Result<Vec<u8>, ProcError> {
        let id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
        self.request_tagged(id, payload)
    }

    /// [`Pool::request`] with a caller-chosen id keyed into the
    /// in-flight table (request ids need not be unique across callers,
    /// but concurrent duplicates blur attribution).
    pub fn request_tagged(&self, id: u64, payload: Vec<u8>) -> Result<Vec<u8>, ProcError> {
        let mut worker = self.checkout()?;
        self.shared
            .in_flight
            .lock()
            .expect("in-flight table poisoned")
            .insert(id, worker.index);
        let result = self.serve(&mut worker, id, &payload);
        self.shared
            .in_flight
            .lock()
            .expect("in-flight table poisoned")
            .remove(&id);
        result
    }

    /// Blocks until an idle worker is available (more concurrent callers
    /// than workers simply wait their turn) or the pool closes.
    fn checkout(&self) -> Result<Checkout<'_>, ProcError> {
        let mut rack = self.shared.rack.lock().expect("pool rack poisoned");
        loop {
            if rack.closed {
                return Err(ProcError::Closed);
            }
            if let Some(worker) = rack.idle.pop() {
                return Ok(Checkout {
                    shared: &self.shared,
                    worker: Some(worker),
                });
            }
            rack = self
                .shared
                .available
                .wait(rack)
                .expect("pool rack poisoned");
        }
    }

    /// Serves one request: first attempt on the checked-out child; on
    /// any failure, respawn the worker (bounded attempts, doubling
    /// backoff, handshake re-validated) and retry the request exactly
    /// once. Requests are pure (see the crate docs), so the retry can
    /// only produce what the first attempt would have.
    fn serve(&self, worker: &mut Worker, id: u64, payload: &[u8]) -> Result<Vec<u8>, ProcError> {
        let first = match worker.child.request(payload) {
            Ok(reply) => return Ok(reply),
            Err(e) => e,
        };
        let index = worker.index;
        match self.respawn(worker) {
            Ok(()) => worker.child.request(payload).map_err(|retry| {
                // The fresh worker failed the same request: report the
                // whole incident on this request id and leave the (again
                // dead) worker to the next request's respawn.
                ProcError::WorkerLost {
                    detail: format!(
                        "request {id} on worker {index}: {first}; \
                         retry on respawned worker: {retry}"
                    ),
                }
            }),
            Err(e) => Err(ProcError::WorkerLost {
                detail: format!("request {id} on worker {index}: {first}; respawn failed: {e}"),
            }),
        }
    }

    /// Replaces a dead (or misbehaving — it is killed either way) worker
    /// with a freshly spawned, handshake-validated process.
    fn respawn(&self, worker: &mut Worker) -> Result<(), ProcError> {
        let mut backoff = RESPAWN_BACKOFF;
        let mut last = ProcError::Closed;
        for attempt in 0..RESPAWN_ATTEMPTS {
            if attempt > 0 {
                thread::sleep(backoff);
                backoff *= 2;
            }
            let ordinal = self.shared.respawns.load(Ordering::Relaxed) + 1;
            match ChildProc::spawn(&mut self.opts.command(ordinal)) {
                Ok(mut fresh) => match fresh.request(&self.opts.handshake) {
                    Ok(ack) if ack == self.expected_ack => {
                        self.shared.respawns.fetch_add(1, Ordering::Relaxed);
                        worker.child = fresh; // the old child is killed by Drop
                        return Ok(());
                    }
                    Ok(_) => last = ProcError::HandshakeMismatch,
                    Err(e) => last = e,
                },
                Err(e) => last = e,
            }
        }
        Err(last)
    }

    /// Requests currently being served by a worker process.
    pub fn in_flight(&self) -> usize {
        self.shared
            .in_flight
            .lock()
            .expect("in-flight table poisoned")
            .len()
    }

    /// Worker processes respawned over the pool's lifetime.
    pub fn respawns(&self) -> u64 {
        self.shared.respawns.load(Ordering::Relaxed)
    }

    /// Worker process count.
    pub fn workers(&self) -> usize {
        self.workers
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        let drained = {
            let mut rack = self.shared.rack.lock().expect("pool rack poisoned");
            rack.closed = true;
            std::mem::take(&mut rack.idle)
        };
        drop(drained); // ChildProc::drop kills and reaps each worker
        self.shared.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::child::{read_frame, write_frame};

    /// `/bin/cat` is a perfectly valid worker: it echoes our own sealed
    /// frames back verbatim, so every request's reply equals its payload.
    fn cat_pool(workers: usize) -> (Pool, Vec<u8>) {
        Pool::spawn(
            PoolOptions {
                program: "/bin/cat".into(),
                args: vec![],
                envs: vec![],
                handshake: b"hello".to_vec(),
                respawn_env: None,
            },
            workers,
        )
        .expect("spawn cat pool")
    }

    #[test]
    fn echo_pool_round_trips_requests() {
        let (pool, ack) = cat_pool(2);
        assert_eq!(ack, b"hello");
        assert_eq!(pool.workers(), 2);
        for i in 0..8u64 {
            let payload = format!("request-{i}").into_bytes();
            assert_eq!(pool.request(payload.clone()).unwrap(), payload);
        }
        assert_eq!(pool.respawns(), 0);
        assert_eq!(pool.in_flight(), 0);
    }

    #[test]
    fn concurrent_callers_share_the_pool() {
        let (pool, _) = cat_pool(3);
        let pool = Arc::new(pool);
        let handles: Vec<_> = (0..6u64)
            .map(|i| {
                let pool = Arc::clone(&pool);
                thread::spawn(move || {
                    for j in 0..4u64 {
                        let payload = format!("{i}:{j}").into_bytes();
                        assert_eq!(pool.request_tagged(i, payload.clone()).unwrap(), payload);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    /// A worker that serves the handshake then exits: the first real
    /// request finds the pipe closed, the pool respawns, and the retry
    /// succeeds on the fresh process — the caller never sees the crash.
    #[test]
    fn crashing_worker_is_respawned_and_the_request_retried() {
        // head -c N copies exactly one sealed handshake frame (9-byte
        // payload => 37 bytes) and exits, killing the next request.
        let hs = b"handshake".to_vec();
        let framed = crate::seal_frame(&hs);
        let (pool, ack) = Pool::spawn(
            PoolOptions {
                program: "/bin/sh".into(),
                args: vec![
                    "-c".into(),
                    format!(
                        "head -c {} ; if [ -n \"$RESPAWNED\" ]; then exec cat; fi",
                        framed.len()
                    ),
                ],
                envs: vec![],
                handshake: hs.clone(),
                respawn_env: Some("RESPAWNED".into()),
            },
            1,
        )
        .expect("spawn crashing pool");
        assert_eq!(ack, hs);
        // First spawn echoed only the handshake and exited; the request
        // below rides entirely on the respawned `exec cat` process.
        let payload = b"after-crash".to_vec();
        assert_eq!(pool.request(payload.clone()).unwrap(), payload);
        assert_eq!(pool.respawns(), 1);
    }

    /// A worker that always writes garbage: both the first attempt and
    /// the respawn-retry fail, and the caller gets a structured error
    /// naming the malformed frame — never a hang or a panic.
    #[test]
    fn persistent_garbage_is_a_structured_error() {
        let hs = b"hi".to_vec();
        let framed = crate::seal_frame(&hs);
        let (pool, _) = Pool::spawn(
            PoolOptions {
                program: "/bin/sh".into(),
                args: vec![
                    "-c".into(),
                    format!(
                        "head -c {} ; head -c 28 > /dev/null ; \
                         printf 'XXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXX' ; exec cat > /dev/null",
                        framed.len()
                    ),
                ],
                envs: vec![],
                handshake: hs.clone(),
                respawn_env: None,
            },
            1,
        )
        .expect("spawn garbage pool");
        let err = pool.request(b"doomed".to_vec()).unwrap_err();
        let text = err.to_string();
        assert!(
            text.contains("magic") || text.contains("header") || text.contains("frame"),
            "error names the malformed frame: {text}"
        );
        assert!(pool.respawns() >= 1, "the pool did try a fresh worker");
    }

    #[test]
    fn missing_binary_is_a_spawn_error() {
        let err = Pool::spawn(
            PoolOptions {
                program: "/nonexistent/dejavuzz-simd".into(),
                args: vec![],
                envs: vec![],
                handshake: vec![],
                respawn_env: None,
            },
            1,
        )
        .unwrap_err();
        assert!(
            matches!(err, ProcError::Spawn { ref program, .. }
                if program.contains("/nonexistent/dejavuzz-simd")),
            "{err:?}"
        );
    }

    #[test]
    fn dropped_pool_rejects_pending_and_later_requests() {
        let (pool, _) = cat_pool(1);
        drop(pool);
        // Nothing to assert beyond "drop returned": the workers were
        // killed and reaped. A second pool proves the machinery is
        // reusable in-process.
        let (pool2, _) = cat_pool(1);
        assert_eq!(pool2.request(b"x".to_vec()).unwrap(), b"x".to_vec());
    }

    #[test]
    fn frame_helpers_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"payload").unwrap();
        let mut r = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap(), Some(b"payload".to_vec()));
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }
}
