//! One worker process: spawn, framed request/response, kill on drop.

use std::io::{BufReader, Read, Write};
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};

use dejavuzz_persist::frame::{self, HEADER_LEN};

use crate::{ProcError, PROC_MAGIC, PROC_VERSION};

/// Upper bound on a single frame (header + payload). Campaign requests
/// and replies are far smaller; anything bigger is a corrupt length
/// field, and rejecting it beats allocating it.
const MAX_FRAME: usize = 256 << 20;

/// Reads one framed payload from `r`. Returns `Ok(None)` on a clean EOF
/// *before* any header byte (the peer closed the stream between
/// requests); anything else that prevents a whole valid frame from
/// arriving is an error. This is the serve-loop half of the transport —
/// worker binaries call it on their locked stdin.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, ProcError> {
    let mut header = [0u8; HEADER_LEN];
    let mut got = 0;
    while got < HEADER_LEN {
        match r.read(&mut header[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(ProcError::BadFrame {
                    detail: format!("stream ended {got} byte(s) into a {HEADER_LEN}-byte header"),
                })
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => {
                return Err(ProcError::WorkerLost {
                    detail: format!("read error: {e}"),
                })
            }
        }
    }
    // Validate the header before trusting its length field: a garbage
    // header would otherwise make us allocate (or wait for) up to 2^64
    // bytes of "body". Magic and version mismatches here get the same
    // diagnosis `frame::open` would give on a whole frame.
    if header[..8] != PROC_MAGIC {
        return Err(ProcError::BadFrame {
            detail: format!(
                "bad magic: found {:?}, expected {:?}",
                &header[..8],
                &PROC_MAGIC[..]
            ),
        });
    }
    let version = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
    if version != PROC_VERSION {
        return Err(ProcError::BadFrame {
            detail: format!("unsupported version: found {version}, expected {PROC_VERSION}"),
        });
    }
    let total = frame::framed_len(&header).expect("HEADER_LEN bytes are a full header");
    if total > MAX_FRAME {
        return Err(ProcError::BadFrame {
            detail: format!("frame of {total} bytes exceeds the {MAX_FRAME}-byte limit"),
        });
    }
    let mut buf = vec![0u8; total];
    buf[..HEADER_LEN].copy_from_slice(&header);
    if let Err(e) = r.read_exact(&mut buf[HEADER_LEN..]) {
        return Err(ProcError::BadFrame {
            detail: format!(
                "stream ended inside a frame body ({} byte(s) expected): {e}",
                total - HEADER_LEN
            ),
        });
    }
    match frame::open_with(PROC_MAGIC, PROC_VERSION, &buf, frame::fnv1a64_x4) {
        Ok(payload) => Ok(Some(payload.to_vec())),
        Err(e) => Err(ProcError::BadFrame {
            detail: e.to_string(),
        }),
    }
}

/// Seals one payload into a wire frame. The RPC stream runs the striped
/// checksum ([`frame::fnv1a64_x4`]): at thousands of frames per second
/// the byte-serial snapshot checksum is a measurable per-RPC tax.
pub fn seal_frame(payload: &[u8]) -> Vec<u8> {
    frame::seal_with(PROC_MAGIC, PROC_VERSION, payload, frame::fnv1a64_x4)
}

/// Writes one framed payload to `w` and flushes it.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), ProcError> {
    let framed = seal_frame(payload);
    w.write_all(&framed)
        .and_then(|()| w.flush())
        .map_err(|e| ProcError::WorkerLost {
            detail: format!("write error: {e}"),
        })
}

/// A spawned worker process with piped stdin/stdout. Stderr is
/// inherited: worker diagnostics land on the embedder's stderr, where
/// campaign chatter already goes. The child is killed (and reaped) on
/// drop, so a dropped pool never leaks processes.
#[derive(Debug)]
pub struct ChildProc {
    child: Child,
    stdin: ChildStdin,
    stdout: BufReader<ChildStdout>,
}

impl ChildProc {
    /// Spawns the worker. The caller configures program, args and env on
    /// the `Command`; stdio wiring is imposed here.
    pub fn spawn(cmd: &mut Command) -> Result<Self, ProcError> {
        let mut child = cmd
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .map_err(|e| ProcError::Spawn {
                program: cmd.get_program().to_string_lossy().into_owned(),
                detail: e.to_string(),
            })?;
        let stdin = child.stdin.take().expect("stdin was piped");
        let stdout = BufReader::new(child.stdout.take().expect("stdout was piped"));
        Ok(ChildProc {
            child,
            stdin,
            stdout,
        })
    }

    /// One blocking request/response round trip. Any failure leaves the
    /// child in an unknown state — the caller must kill and respawn it
    /// (dropping this value kills it).
    pub fn request(&mut self, payload: &[u8]) -> Result<Vec<u8>, ProcError> {
        write_frame(&mut self.stdin, payload).map_err(|e| self.attribute_exit(e))?;
        match read_frame(&mut self.stdout) {
            Ok(Some(reply)) => Ok(reply),
            Ok(None) => Err(self.attribute_exit(ProcError::WorkerLost {
                detail: "worker closed its stdout before replying".into(),
            })),
            Err(e) => Err(self.attribute_exit(e)),
        }
    }

    /// Folds the child's exit status (if it already died) into a
    /// transport error, so "pipe closed" failures report *why* — the
    /// difference between a segfault and a clean crash-injection exit.
    fn attribute_exit(&mut self, e: ProcError) -> ProcError {
        match self.child.try_wait() {
            Ok(Some(status)) => match e {
                // A malformed frame from a live worker stays a frame
                // error; once the worker is known dead, the death is the
                // story.
                ProcError::WorkerLost { detail } | ProcError::BadFrame { detail } => {
                    ProcError::WorkerLost {
                        detail: format!("worker exited ({status}): {detail}"),
                    }
                }
                other => other,
            },
            _ => e,
        }
    }
}

impl Drop for ChildProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}
