//! Integration tests for the pluggable scheduling layer: the
//! work-stealing determinism contract, the batch=1 round-robin
//! equivalence proof obligation, steal-mode snapshot/resume, and the
//! favoured-quota seed policy end to end.

use dejavuzz::backend::BackendSpec;
use dejavuzz::builder::CampaignBuilder;
use dejavuzz::executor::ExecutorReport;
use dejavuzz::scheduler::{PolicySpec, SchedulerSpec};
use dejavuzz::snapshot::CampaignSnapshot;
use dejavuzz_uarch::boom_small;

fn orch(workers: usize, seed: u64) -> CampaignBuilder {
    CampaignBuilder::new()
        .backend(BackendSpec::behavioural(boom_small()))
        .workers(workers)
        .seed(seed)
}

/// Field-by-field deep equality for executor reports (timing fields —
/// `busy_nanos`, `modelled_makespan_nanos` — are intentionally excluded:
/// they are measurements, not results).
fn assert_reports_identical(a: &ExecutorReport, b: &ExecutorReport) {
    assert_eq!(a.stats, b.stats, "stats (curve, windows, bugs, counters)");
    assert_eq!(a.coverage.sorted_points(), b.coverage.sorted_points());
    assert_eq!(a.shared_points, b.shared_points);
    assert_eq!(a.corpus_retained, b.corpus_retained);
    assert_eq!(a.corpus_evicted, b.corpus_evicted);
    assert_eq!(a.workers.len(), b.workers.len());
    for (wa, wb) in a.workers.iter().zip(&b.workers) {
        assert_eq!(wa.iterations, wb.iterations, "worker {}", wa.worker);
        assert_eq!(
            wa.observed.sorted_points(),
            wb.observed.sorted_points(),
            "worker {}",
            wa.worker
        );
    }
}

/// The schedulers differ only in intra-batch state chaining, so at
/// `batch == 1` they must be **bit-identical** — same curve, bugs,
/// corpus, per-worker accounting and snapshots — across worker counts.
/// This is the strongest true form of "work stealing computes what round
/// robin computes"; see the `dejavuzz::scheduler` module docs for why
/// larger batches can diverge (and why each stays deterministic).
#[test]
fn steal_equals_round_robin_at_batch_one_across_worker_counts() {
    for workers in 1..=4 {
        let round = orch(workers, 0x5EED)
            .batch(1)
            .scheduler(SchedulerSpec::RoundRobin)
            .build()
            .unwrap();
        let steal = orch(workers, 0x5EED)
            .batch(1)
            .scheduler(SchedulerSpec::WorkStealing)
            .build()
            .unwrap();
        let (round_report, round_snap) = round.run_snapshotting(16);
        let (steal_report, steal_snap) = steal.run_snapshotting(16);
        assert_reports_identical(&round_report, &steal_report);
        // Snapshots agree on everything but the scheduler tag itself.
        assert_eq!(round_snap.scheduler, SchedulerSpec::RoundRobin);
        assert_eq!(steal_snap.scheduler, SchedulerSpec::WorkStealing);
        let mut retagged = steal_snap.clone();
        retagged.scheduler = SchedulerSpec::RoundRobin;
        assert_eq!(
            retagged, round_snap,
            "{workers} workers: identical state, RNG streams included"
        );
    }
}

/// The headline work-stealing contract: thread timing (who claimed which
/// slot) must never leak into results. Two runs at the default batch
/// size, with real claim contention, must agree exactly.
#[test]
fn work_stealing_is_deterministic_regardless_of_interleaving() {
    for workers in [2, 4] {
        let run = || {
            orch(workers, 0xD15C0)
                .scheduler(SchedulerSpec::WorkStealing)
                .build()
                .unwrap()
                .run(24)
        };
        let a = run();
        let b = run();
        assert_reports_identical(&a, &b);
        assert!(a.stats.coverage() > 0, "the campaign actually fuzzes");
    }
}

/// Work stealing under halt/resume: a snapshot taken at any boundary
/// resumes bit-identically, and at batch=1 the resumed steal run still
/// equals the uninterrupted *round-robin* run — equivalence survives the
/// halt/resume boundary.
#[test]
fn steal_resume_is_bit_identical_and_batch_one_equivalence_survives_it() {
    const TOTAL: usize = 24;
    let steal = orch(2, 0xCAFE)
        .batch(1)
        .scheduler(SchedulerSpec::WorkStealing);
    let full_steal = steal.clone().build().unwrap().run(TOTAL);
    let full_round = orch(2, 0xCAFE)
        .batch(1)
        .scheduler(SchedulerSpec::RoundRobin)
        .build()
        .unwrap()
        .run(TOTAL);

    let mut interrupted = 0;
    for halt in [1, 9, 14] {
        let (partial, snap) = steal
            .clone()
            .halt_after(halt)
            .build()
            .unwrap()
            .run_snapshotting(TOTAL);
        if partial.stats.iterations < TOTAL {
            interrupted += 1;
        }
        // Through the wire format, as a real restart would.
        let snap = CampaignSnapshot::from_bytes(&snap.to_bytes()).unwrap();
        assert_eq!(snap.scheduler, SchedulerSpec::WorkStealing);
        let resumed = steal
            .clone()
            .resume(snap)
            .build()
            .expect("same backend + options")
            .run(TOTAL);
        assert_reports_identical(&full_steal, &resumed);
        assert_reports_identical(&full_round, &resumed);
    }
    assert!(interrupted >= 2, "most halt points must truly interrupt");
}

/// Resuming adopts the snapshot's scheduler and policy: a default
/// (round-robin) orchestrator handed a steal-mode snapshot continues the
/// steal campaign, not a mixed one.
#[test]
fn resume_adopts_scheduler_and_policy_from_the_snapshot() {
    let steal = orch(2, 0xA207)
        .scheduler(SchedulerSpec::WorkStealing)
        .seed_policy(PolicySpec::FavouredQuota);
    let full = steal.clone().build().unwrap().run(16);
    let (_, snap) = steal.halt_after(6).build().unwrap().run_snapshotting(16);
    assert_eq!(snap.policy, PolicySpec::FavouredQuota);

    // A vanilla builder — no scheduler/policy configured — resumes it.
    let resumed = orch(2, 0xA207).resume(snap).build().unwrap().run(16);
    assert_reports_identical(&full, &resumed);
}

/// The favoured-quota policy drives a real campaign deterministically,
/// snapshots its favours map, and resumes bit-identically.
#[test]
fn favoured_policy_campaign_is_deterministic_and_resumable() {
    let favoured = orch(2, 0xFA40).seed_policy(PolicySpec::FavouredQuota);
    let a = favoured.clone().build().unwrap().run(20);
    let b = favoured.clone().build().unwrap().run(20);
    assert_reports_identical(&a, &b);
    assert!(a.stats.coverage() > 0);

    let (_, snap) = favoured
        .clone()
        .halt_after(8)
        .build()
        .unwrap()
        .run_snapshotting(20);
    // 8+ feedback iterations on vulnerable BOOM retain gaining seeds, so
    // the policy has favours worth persisting.
    let snap = CampaignSnapshot::from_bytes(&snap.to_bytes()).unwrap();
    let resumed = favoured.resume(snap).build().unwrap().run(20);
    assert_reports_identical(&a, &resumed);

    // And the two policies genuinely schedule differently: the corpus
    // retention trajectory is a campaign result, so any divergence shows
    // up as differing stats (they share the seed, so identical stats
    // would mean the policy had no effect at all).
    let energy = orch(2, 0xFA40)
        .seed_policy(PolicySpec::EnergyDecay)
        .build()
        .unwrap()
        .run(20);
    assert!(
        energy.stats != a.stats || energy.corpus_retained != a.corpus_retained,
        "favoured-quota scheduling must actually change the campaign"
    );
}

/// Work stealing composes with the favoured policy (the full non-default
/// configuration) and still honours the determinism contract.
#[test]
fn steal_with_favoured_policy_is_deterministic() {
    let run = || {
        orch(3, 0xB007)
            .scheduler(SchedulerSpec::WorkStealing)
            .seed_policy(PolicySpec::FavouredQuota)
            .build()
            .unwrap()
            .run(18)
    };
    let a = run();
    let b = run();
    assert_reports_identical(&a, &b);
}

/// Snapshot rotation: periodic checkpoints rotate into numbered siblings
/// pruned to the keep budget, the final checkpoint still lands on the
/// plain path, and every kept rotation is a loadable, resumable snapshot.
#[test]
fn snapshot_rotation_keeps_a_bounded_resumable_trail() {
    let dir = std::env::temp_dir().join(format!("dejavuzz-rotate-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("camp.snap");

    let o = orch(2, 0x4074)
        .snapshot_path(&path)
        .snapshot_every(1)
        .snapshot_keep(2)
        .build()
        .unwrap();
    let report = o.run(32);
    assert_eq!(report.stats.iterations, 32);

    let mut rotated: Vec<u64> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| {
            e.unwrap()
                .file_name()
                .to_str()
                .and_then(|n| n.strip_prefix("camp.snap.").map(str::to_string))
        })
        .filter_map(|suffix| suffix.parse().ok())
        .collect();
    rotated.sort_unstable();
    assert_eq!(rotated.len(), 2, "pruned to the keep budget: {rotated:?}");
    // 2 workers x batch 4 = 8 slots per round; the last two periodic
    // rounds are the ones kept.
    assert_eq!(rotated, vec![24, 32]);

    // The plain path carries the end-of-run checkpoint.
    let last = CampaignSnapshot::load(&path).unwrap();
    assert_eq!(last.completed, 32);

    // A kept rotation resumes exactly like any other checkpoint.
    let mid = CampaignSnapshot::load(&dir.join("camp.snap.24")).unwrap();
    assert_eq!(mid.completed, 24);
    let resumed = orch(2, 0x4074).resume(mid).build().unwrap().run(32);
    assert_reports_identical(&report, &resumed);

    let _ = std::fs::remove_dir_all(&dir);
}

/// Pipelining off (`--pipeline-lag 0`, the default) IS the historical
/// barriered steal mode: same code path, same results, and the
/// snapshots agree **byte for byte** on the wire — the strongest form
/// of the "lag 0 changes nothing" acceptance gate.
#[test]
fn lag_zero_is_byte_identical_to_plain_steal() {
    for workers in 1..=3 {
        let plain = orch(workers, 0x1A60)
            .scheduler(SchedulerSpec::WorkStealing)
            .build()
            .unwrap();
        let lagged = orch(workers, 0x1A60)
            .scheduler(SchedulerSpec::WorkStealing)
            .pipeline_lag(0)
            .build()
            .unwrap();
        let (plain_report, plain_snap) = plain.run_snapshotting(16);
        let (lag_report, lag_snap) = lagged.run_snapshotting(16);
        assert_reports_identical(&plain_report, &lag_report);
        assert_eq!(
            plain_snap.to_bytes(),
            lag_snap.to_bytes(),
            "{workers} workers: lag 0 must not perturb a single byte"
        );
    }
}

/// The lag-insensitivity contract: every positive lag runs the same
/// depth-1 round-quantized pipeline, so for a fixed `(seed, workers,
/// batch)` all of them — including an unbounded lag — compute identical
/// results and identical snapshots (modulo the recorded lag itself),
/// and repeated runs at each lag agree despite real claim contention.
#[test]
fn all_positive_lags_compute_identical_results() {
    for workers in [2, 3] {
        let run = |lag: usize| {
            orch(workers, 0x9199)
                .scheduler(SchedulerSpec::WorkStealing)
                .pipeline_lag(lag)
                .build()
                .unwrap()
                .run_snapshotting(24)
        };
        let (base_report, base_snap) = run(1);
        assert!(base_report.stats.coverage() > 0, "the campaign fuzzes");
        for lag in [1, 4, usize::MAX] {
            let (report, snap) = run(lag);
            assert_reports_identical(&base_report, &report);
            let mut retagged = snap.clone();
            retagged.pipeline_lag = base_snap.pipeline_lag;
            assert_eq!(
                retagged, base_snap,
                "{workers} workers, lag {lag}: identical state"
            );
        }
    }
}

/// The pipelined makespan model stays within the same physical bounds
/// as the barriered one, and the reported barrier idle is exactly the
/// model's worker-time surplus.
#[test]
fn pipelined_scheduling_model_bounds_hold() {
    for lag in [0, 2] {
        let r = orch(3, 1)
            .scheduler(SchedulerSpec::WorkStealing)
            .pipeline_lag(lag)
            .build()
            .unwrap()
            .run(18);
        assert!(r.busy_nanos > 0, "lag {lag}: iterations were timed");
        assert!(r.modelled_makespan_nanos > 0);
        assert!(
            r.modelled_makespan_nanos <= r.busy_nanos,
            "lag {lag}: makespan can never exceed the serial sum"
        );
        assert!(
            3 * r.modelled_makespan_nanos >= r.busy_nanos,
            "lag {lag}: three workers cannot beat 3x parallelism"
        );
        assert_eq!(
            r.barrier_idle_nanos,
            3 * r.modelled_makespan_nanos - r.busy_nanos,
            "lag {lag}: idle is the modelled worker-time surplus"
        );
    }
}

/// The scheduling model in the report is populated and consistent: total
/// busy time is bounded by `workers x` the modelled makespan (the model
/// cannot be better than perfectly parallel) and is at least the
/// makespan itself (the model cannot beat serial work).
#[test]
fn scheduling_model_bounds_hold() {
    for spec in [SchedulerSpec::RoundRobin, SchedulerSpec::WorkStealing] {
        let r = orch(3, 1).scheduler(spec.clone()).build().unwrap().run(18);
        assert!(r.busy_nanos > 0, "{spec:?}: iterations were timed");
        assert!(r.modelled_makespan_nanos > 0);
        assert!(
            r.modelled_makespan_nanos <= r.busy_nanos,
            "{spec:?}: makespan can never exceed the serial sum"
        );
        assert!(
            3 * r.modelled_makespan_nanos >= r.busy_nanos,
            "{spec:?}: three workers cannot beat 3x parallelism"
        );
    }
}
