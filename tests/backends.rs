//! Backend parity suite for the `SimBackend` seam:
//!
//! * the behavioural backend must reproduce the PR-1 pipeline executor's
//!   determinism results exactly (the seam adds dispatch, never
//!   behaviour),
//! * the netlist backend must reproduce the Figure 2 CellIFT-vs-diffIFT
//!   taint split (unit-tested in `crates/rtl/src/examples.rs` against the
//!   raw circuit) through the *full `phase2` path*, and complete
//!   campaigns end-to-end with nonzero taint coverage,
//! * a misconfigured backend must fail its runs, not the campaign.

use dejavuzz::backend::{BackendSpec, NetlistBackend, NetlistIo};
use dejavuzz::campaign::{Campaign, FuzzerOptions};
use dejavuzz::executor;
use dejavuzz::gen::WindowType;
use dejavuzz::phases::{phase1, phase2, PhaseOptions};
use dejavuzz::Seed;
use dejavuzz_ift::{CoverageMatrix, IftMode};
use dejavuzz_rtl::examples::{synthetic_core, SMALL_SCALE};
use dejavuzz_uarch::boom_small;

/// (a) The explicit behavioural spec and the historical
/// `CoreConfig`-positional entry points are the same campaign, bit for
/// bit: bugs, exact coverage curve, per-worker observations, corpus.
#[test]
fn behavioural_backend_reproduces_pipeline_determinism() {
    let legacy = executor::run(
        BackendSpec::behavioural(boom_small()),
        FuzzerOptions::default(),
        2,
        20,
        0xD15C0,
    );
    let spec = executor::run(
        BackendSpec::behavioural(boom_small()),
        FuzzerOptions::default(),
        2,
        20,
        0xD15C0,
    );
    assert_eq!(legacy.stats.bugs, spec.stats.bugs);
    assert_eq!(legacy.stats.coverage_curve, spec.stats.coverage_curve);
    assert_eq!(legacy.stats.sim_runs, spec.stats.sim_runs);
    assert_eq!(legacy.stats.sim_cycles, spec.stats.sim_cycles);
    assert_eq!(legacy.stats.failed_runs, 0);
    assert_eq!(spec.stats.failed_runs, 0);
    assert_eq!(
        legacy.coverage.sorted_points(),
        spec.coverage.sorted_points()
    );
    assert_eq!(legacy.corpus_retained, spec.corpus_retained);
    for (a, b) in legacy.workers.iter().zip(&spec.workers) {
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.observed.sorted_points(), b.observed.sorted_points());
    }

    // The single-worker façade agrees with itself run over run too.
    let old = Campaign::with_backend(
        BackendSpec::behavioural(boom_small()),
        FuzzerOptions::default(),
        9,
    )
    .run(10);
    let new = Campaign::with_backend(
        BackendSpec::behavioural(boom_small()),
        FuzzerOptions::default(),
        9,
    )
    .run(10);
    assert_eq!(old.coverage_curve, new.coverage_curve);
    assert_eq!(old.bugs, new.bugs);
}

/// (b) Figure 2 through the full phase-2 path: on the RoB-entry circuit a
/// rollback with tainted-but-equal control signals taints *every* entry
/// field register under CellIFT and stays bounded under diffIFT.
#[test]
fn netlist_rob_entry_reproduces_figure2_split_through_phase2() {
    const ENTRIES: usize = 16;
    let mut peaks = Vec::new();
    for mode in [IftMode::CellIft, IftMode::DiffIft] {
        let mut backend = NetlistBackend::rob_entry(ENTRIES);
        let opts = PhaseOptions {
            mode,
            ..PhaseOptions::default()
        };
        // Page-fault windows need no training, so phase 1 triggers on the
        // first seed and phase 2 runs the real taint-mode simulation.
        let seed = Seed::new(WindowType::MemPageFault, 4);
        let p1 = phase1(&mut backend, &seed, &opts).unwrap();
        assert!(p1.triggered, "{mode:?}: page-fault window must trigger");
        let mut cov = CoverageMatrix::new();
        let p2 = phase2(&mut backend, &seed, &p1, &mut cov, &opts).unwrap();
        assert!(
            p2.taints_increased,
            "{mode:?}: the secret enters inside the window"
        );
        assert!(p2.coverage_gain > 0, "{mode:?}: fresh coverage");
        peaks.push(p2.run.taint_log.peak_taint());
    }
    let (cellift, diffift) = (peaks[0], peaks[1]);
    assert_eq!(
        cellift, ENTRIES,
        "CellIFT: all RoB entry field registers suddenly tainted on rollback"
    );
    assert!(
        diffift <= 2,
        "diffIFT must not explode through phase 2: {diffift} tainted"
    );
    assert!(diffift >= 1, "the secret uopc stays tainted");
}

/// The acceptance campaign: `netlist:small` completes end-to-end on the
/// pooled executor with nonzero taint coverage through the shared
/// `TaintCoverage` sink, and stays deterministic per (seed, workers).
#[test]
fn netlist_backend_campaign_end_to_end() {
    let spec = BackendSpec::netlist(SMALL_SCALE);
    let a = executor::run(spec.clone(), FuzzerOptions::default(), 2, 16, 11);
    assert_eq!(a.stats.iterations, 16);
    assert_eq!(a.stats.failed_runs, 0);
    assert!(
        a.stats.coverage() > 0,
        "netlist campaign must report taint coverage"
    );
    assert_eq!(
        a.stats.coverage(),
        a.coverage.points(),
        "curve tail equals the exact union"
    );
    assert_eq!(a.coverage.points(), a.shared_points, "both unions agree");
    assert!(
        a.stats.windows.values().any(|w| w.triggered > 0),
        "windows trigger on the netlist backend"
    );

    let b = executor::run(spec, FuzzerOptions::default(), 2, 16, 11);
    assert_eq!(a.stats.coverage_curve, b.stats.coverage_curve);
    assert_eq!(a.stats.bugs, b.stats.bugs);
}

/// A misconfigured backend (I/O mapped onto missing input ports) fails
/// every run but never the campaign: iterations complete, errors are
/// counted, nothing panics.
#[test]
fn misconfigured_backend_fails_runs_not_the_campaign() {
    let broken = NetlistBackend::new(
        "broken",
        synthetic_core(SMALL_SCALE),
        NetlistIo {
            data: 640,
            control: 2,
            index: 3,
            aux: vec![],
        },
    );
    let mut campaign = Campaign::with_boxed_backend(Box::new(broken), FuzzerOptions::default(), 3);
    let stats = campaign.run(6);
    assert_eq!(stats.iterations, 6, "the campaign keeps running");
    assert_eq!(stats.failed_runs, 6, "every run failed cleanly");
    assert!(stats.bugs.is_empty());
    assert_eq!(stats.coverage(), 0);
}

/// Capability flags of the in-tree backends.
#[test]
fn backend_capability_flags() {
    let behavioural = BackendSpec::behavioural(boom_small()).build();
    assert_eq!(behavioural.name(), "behavioural");
    assert_eq!(behavioural.dut_name(), "BOOM");
    assert!(behavioural.supports_taint());

    let netlist = BackendSpec::netlist(SMALL_SCALE).build();
    assert_eq!(netlist.name(), "netlist");
    assert_eq!(netlist.dut_name(), "SynthSmall");
    assert!(netlist.supports_taint());
}
