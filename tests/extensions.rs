//! Extension-registry acceptance: custom `Scheduler`/`SeedPolicy`/
//! `SimBackend` implementations registered by id must drive campaigns
//! deterministically and **survive snapshot→resume bit-identically** —
//! including their own state blobs — and resuming without the ids
//! registered must fail structurally at build time.

use std::ops::Range;

use dejavuzz::backend::{BackendSpec, BehaviouralBackend};
use dejavuzz::builder::{BuildError, CampaignBuilder};
use dejavuzz::corpus::Corpus;
use dejavuzz::executor::ExecutorReport;
use dejavuzz::rand::rngs::StdRng;
use dejavuzz::scheduler::{
    PlanCtx, PolicySpec, PolicyState, RoundPlan, RoundRobin, Scheduler, SchedulerSpec, SeedPolicy,
    SlotFeedback,
};
use dejavuzz::snapshot::CampaignSnapshot;
use dejavuzz::Seed;
use dejavuzz_uarch::boom_small;

/// A stateful custom scheduler: rounds alternate between full span and a
/// single batch, keyed off a round counter that MUST survive the
/// snapshot (a resume that reset it would plan different spans and
/// diverge — which is exactly what the bit-identity assertions below
/// would catch).
#[derive(Debug, Default)]
struct Pulse {
    rounds: u64,
}

impl Pulse {
    fn from_state(state: Option<&[u8]>) -> Self {
        let rounds = state
            .and_then(|b| <[u8; 8]>::try_from(b).ok())
            .map(u64::from_le_bytes)
            .unwrap_or(0);
        Pulse { rounds }
    }
}

impl Scheduler for Pulse {
    fn name(&self) -> &'static str {
        "pulse"
    }

    fn round_span(&self, workers: usize, batch: usize, remaining: usize) -> usize {
        let span = if self.rounds.is_multiple_of(2) {
            workers * batch
        } else {
            batch
        };
        remaining.min(span.max(1))
    }

    fn plan_round(&mut self, slots: Range<usize>, ctx: &mut PlanCtx<'_>) -> RoundPlan {
        self.rounds += 1;
        RoundRobin.plan_round(slots, ctx)
    }

    fn state(&self) -> Vec<u8> {
        self.rounds.to_le_bytes().to_vec()
    }
}

/// A stateful custom policy: every third call greedily reschedules the
/// strongest corpus entry; the call counter persists as an opaque blob.
#[derive(Debug, Default)]
struct GreedyThirds {
    calls: u64,
}

impl GreedyThirds {
    fn from_state(state: Option<&[u8]>) -> Self {
        let calls = state
            .and_then(|b| <[u8; 8]>::try_from(b).ok())
            .map(u64::from_le_bytes)
            .unwrap_or(0);
        GreedyThirds { calls }
    }
}

impl SeedPolicy for GreedyThirds {
    fn name(&self) -> &'static str {
        "greedy-thirds"
    }

    fn schedule(&mut self, corpus: &mut Corpus, _rng: &mut StdRng) -> Option<Seed> {
        self.calls += 1;
        if corpus.is_empty() || !self.calls.is_multiple_of(3) {
            return None;
        }
        let best = corpus
            .entries()
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| {
                a.energy()
                    .partial_cmp(&b.energy())
                    .expect("energy is finite")
            })
            .map(|(i, _)| i)?;
        Some(corpus.schedule_entry(best))
    }

    fn record(&mut self, corpus: &mut Corpus, feedback: &SlotFeedback<'_>) {
        corpus.record(feedback.seed, feedback.gain);
    }

    fn state(&self) -> PolicyState {
        PolicyState::Opaque(self.calls.to_le_bytes().to_vec())
    }
}

/// The fully customised campaign, as a fresh process would assemble it
/// (the `*_ctor` conveniences register into the process-global registry
/// and select the extension specs).
fn custom_campaign(seed: u64) -> CampaignBuilder {
    CampaignBuilder::new()
        .backend_ctor("ext-test-boom", || {
            Box::new(BehaviouralBackend::new(boom_small()))
        })
        .scheduler_ctor("ext-test-pulse", |state| Box::new(Pulse::from_state(state)))
        .seed_policy_ctor("ext-test-greedy", |state| {
            Box::new(GreedyThirds::from_state(state))
        })
        .workers(2)
        .seed(seed)
}

fn assert_reports_identical(a: &ExecutorReport, b: &ExecutorReport) {
    assert_eq!(a.stats, b.stats, "stats (curve, windows, bugs, counters)");
    assert_eq!(a.coverage.sorted_points(), b.coverage.sorted_points());
    assert_eq!(a.corpus_retained, b.corpus_retained);
    assert_eq!(a.corpus_evicted, b.corpus_evicted);
    for (wa, wb) in a.workers.iter().zip(&b.workers) {
        assert_eq!(wa.iterations, wb.iterations, "worker {}", wa.worker);
        assert_eq!(wa.observed.sorted_points(), wb.observed.sorted_points());
    }
}

/// Custom extensions drive a deterministic campaign, and their ids +
/// state blobs land in the snapshot.
#[test]
fn custom_campaign_is_deterministic_and_snapshots_extension_identity() {
    let a = custom_campaign(0xE57).build().unwrap().run(20);
    let b = custom_campaign(0xE57).build().unwrap().run(20);
    assert_reports_identical(&a, &b);
    assert!(
        a.stats.coverage() > 0,
        "the custom campaign actually fuzzes"
    );

    let (_, snap) = custom_campaign(0xE57).build().unwrap().run_snapshotting(20);
    assert_eq!(snap.backend, "ext:ext-test-boom");
    assert_eq!(
        snap.scheduler,
        SchedulerSpec::Extension("ext-test-pulse".into())
    );
    assert_eq!(snap.policy, PolicySpec::Extension("ext-test-greedy".into()));
    // 20 iterations over pulse spans 8,4,8,... -> 3 rounds.
    assert_eq!(snap.scheduler_state, 3u64.to_le_bytes().to_vec());
    assert!(matches!(&snap.policy_state, PolicyState::Opaque(b) if !b.is_empty()));
}

/// The headline acceptance property: a campaign on registered custom
/// implementations, halted at any boundary and resumed through the wire
/// format, replays bit-identically to the uninterrupted run — the
/// custom state blobs round-trip through snapshot v3.
#[test]
fn custom_extensions_survive_snapshot_resume_bit_identically() {
    const TOTAL: usize = 24;
    let full = custom_campaign(0xCAFE).build().unwrap().run(TOTAL);
    let mut interrupted = 0;
    for halt in [1, 9, 14] {
        let (partial, snap) = custom_campaign(0xCAFE)
            .halt_after(halt)
            .build()
            .unwrap()
            .run_snapshotting(TOTAL);
        if partial.stats.iterations < TOTAL {
            interrupted += 1;
        }
        let snap = CampaignSnapshot::from_bytes(&snap.to_bytes()).unwrap();
        let resumed = custom_campaign(0xCAFE)
            .resume(snap)
            .build()
            .expect("extensions re-registered")
            .run(TOTAL);
        assert_reports_identical(&full, &resumed);
    }
    assert!(interrupted >= 2, "most halt points must truly interrupt");
}

/// Resuming a custom-extension snapshot without the ids registered fails
/// at build time with the ids named — never mid-campaign.
#[test]
fn resuming_unregistered_extensions_fails_structurally() {
    let (_, snap) = custom_campaign(0x0FF).build().unwrap().run_snapshotting(8);

    // A builder with the matching custom backend but no scheduler/policy
    // registrations beyond the global registry: fake the miss by naming
    // ids nobody registered.
    let mut missing_sched = snap.clone();
    missing_sched.scheduler = SchedulerSpec::Extension("never-registered-sched".into());
    let err = custom_campaign(0x0FF)
        .resume(missing_sched)
        .build()
        .unwrap_err();
    assert_eq!(
        err,
        BuildError::UnknownScheduler {
            id: "never-registered-sched".into()
        }
    );

    let mut missing_pol = snap.clone();
    missing_pol.policy = PolicySpec::Extension("never-registered-pol".into());
    let err = custom_campaign(0x0FF)
        .resume(missing_pol)
        .build()
        .unwrap_err();
    assert_eq!(
        err,
        BuildError::UnknownSeedPolicy {
            id: "never-registered-pol".into()
        }
    );

    // And a backend-label mismatch (built-in vs extension) is the usual
    // resume validation error.
    let err = CampaignBuilder::new()
        .backend(BackendSpec::behavioural(boom_small()))
        .resume(snap)
        .build()
        .unwrap_err();
    assert!(matches!(err, BuildError::Resume(_)), "{err:?}");
}
