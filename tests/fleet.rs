//! Fleet gossip acceptance properties (the `crates/fleet` + core gossip
//! contract):
//!
//! * **Exact union** — for a 2-shard fleet gossiping over the in-process
//!   bus, the union of the two final coverage matrices equals the union
//!   of every point either shard discovered through a commit
//!   (`coverage_gained`): gossip moves points between shards but never
//!   invents or loses one.
//! * **Boundary-exact imports** — every `peer_delta_imported` /
//!   `seed_imported` event fires at a round boundary (its `boundary`
//!   equals the committed-slot count at that moment, a multiple of the
//!   gossip cadence in slots) and never inside a round; exports carry
//!   disjoint deltas drawn only from the shard's own discoveries.
//! * **Zero-peer identity** — a campaign gossiping through a
//!   [`NullLink`] emits byte-for-byte the event stream (and final
//!   report) of a campaign with no gossip configured, across random
//!   geometries (property test).

use std::collections::HashSet;
use std::sync::{Arc, Mutex};

use dejavuzz::backend::BackendSpec;
use dejavuzz::builder::CampaignBuilder;
use dejavuzz::gossip::{shared_link, GossipFrame, GossipLink, NullLink};
use dejavuzz::observer::CampaignObserver;
use dejavuzz_fleet::gossip::mesh;
use dejavuzz_fleet::transport::{CampaignEvent, ChannelObserver};
use dejavuzz_ift::CoveragePoint;
use dejavuzz_uarch::boom_small;
use proptest::prelude::*;

fn base(seed: u64) -> CampaignBuilder {
    CampaignBuilder::new()
        .backend(BackendSpec::behavioural(boom_small()))
        .seed(seed)
}

/// Runs a campaign collecting its full owned event stream.
fn run_collecting(
    builder: CampaignBuilder,
    iterations: usize,
) -> (dejavuzz::ExecutorReport, Vec<CampaignEvent>) {
    let (observer, events) = ChannelObserver::channel(4096);
    let mut observers: Vec<Box<dyn CampaignObserver>> = vec![Box::new(observer)];
    let (report, _) = builder
        .build()
        .expect("valid configuration")
        .run_observed(iterations, &mut observers);
    drop(observers);
    (report, events.iter().collect())
}

fn gained_points(events: &[CampaignEvent]) -> HashSet<CoveragePoint> {
    events
        .iter()
        .filter_map(|e| match e {
            CampaignEvent::CoverageGained { points, .. } => Some(points.iter().copied()),
            _ => None,
        })
        .flatten()
        .collect()
}

#[test]
fn two_gossiping_shards_cover_the_exact_fleet_union() {
    let links = mesh(2);
    let mut handles = Vec::new();
    for (shard, link) in links.into_iter().enumerate() {
        let builder = base(100 + shard as u64)
            .workers(2)
            .shard_id(shard as u32)
            .gossip_every(1)
            .gossip(link);
        handles.push(std::thread::spawn(move || run_collecting(builder, 32)));
    }
    let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    // Every point in either final matrix was discovered by a commit
    // somewhere in the fleet, and every discovered point is in the
    // fleet union: coverage neither appears from nowhere nor vanishes.
    let mut fleet_union: HashSet<CoveragePoint> = HashSet::new();
    let mut fleet_gained: HashSet<CoveragePoint> = HashSet::new();
    for (report, events) in &results {
        fleet_union.extend(report.coverage.iter().copied());
        fleet_gained.extend(gained_points(events));
        // The coverage curve records commits only, so a final-boundary
        // import can grow the matrix past it; the last total_points any
        // event reported (commit *or* import) is the matrix count.
        let last_total = events
            .iter()
            .rev()
            .find_map(|e| match e {
                CampaignEvent::SlotCommitted(ev) => Some(ev.total_points),
                CampaignEvent::PeerDeltaImported(ev) => Some(ev.total_points),
                _ => None,
            })
            .expect("the stream carries totals");
        assert_eq!(
            report.coverage.points(),
            last_total,
            "every point in the final matrix is accounted for by an event"
        );
    }
    assert_eq!(
        fleet_union, fleet_gained,
        "the fleet union is exactly the union of committed discoveries"
    );

    // The exchange actually happened, and each import's accounting is
    // internally consistent (fresh <= carried, every import is a peer's).
    for (shard, (_, events)) in results.iter().enumerate() {
        let imports: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                CampaignEvent::PeerDeltaImported(ev) => Some(*ev),
                _ => None,
            })
            .collect();
        assert!(
            !imports.is_empty(),
            "shard {shard} imported at least one peer delta"
        );
        for ev in imports {
            assert_ne!(ev.from_shard, shard as u32, "no self-imports");
            assert!(ev.fresh_points <= ev.points);
        }
    }
}

/// A link that delivers one preloaded peer frame per drain and records
/// everything published through it.
struct ScriptedLink {
    pending: Vec<GossipFrame>,
    published: Arc<Mutex<Vec<GossipFrame>>>,
}

impl GossipLink for ScriptedLink {
    fn publish(&mut self, frame: &GossipFrame) {
        self.published.lock().unwrap().push(frame.clone());
    }

    fn drain(&mut self) -> Vec<GossipFrame> {
        if self.pending.is_empty() {
            Vec::new()
        } else {
            vec![self.pending.remove(0)]
        }
    }
}

#[test]
fn imports_fire_exactly_at_round_boundaries() {
    const WORKERS: usize = 2;
    const BATCH: usize = 4;
    const EVERY: usize = 2;
    const TOTAL: usize = 32;
    let peer_points: Vec<CoveragePoint> = (1..=6)
        .map(|index| CoveragePoint {
            module: "scripted_peer",
            index,
        })
        .collect();
    let frames: Vec<GossipFrame> = peer_points
        .chunks(3)
        .enumerate()
        .map(|(i, chunk)| GossipFrame {
            shard: 99,
            iterations: 10 * (i + 1),
            delta: chunk.to_vec(),
            favoured: Vec::new(),
        })
        .collect();
    let published = Arc::new(Mutex::new(Vec::new()));
    let link = ScriptedLink {
        pending: frames,
        published: Arc::clone(&published),
    };

    let (report, events) = run_collecting(
        base(0xF1EE7)
            .workers(WORKERS)
            .batch(BATCH)
            .gossip_every(EVERY)
            .gossip(shared_link(link)),
        TOTAL,
    );

    // Walk the stream: imports are legal only between the last commit of
    // a gossip-boundary round and the next round's start.
    let round_slots = WORKERS * BATCH;
    let mut committed = 0usize;
    let mut saw_import = false;
    let mut imports = 0;
    for ev in &events {
        match ev {
            CampaignEvent::SlotCommitted(_) => {
                assert!(
                    !saw_import,
                    "a slot committed after an import without a round_started between"
                );
                committed += 1;
            }
            CampaignEvent::RoundStarted(_) => saw_import = false,
            CampaignEvent::PeerDeltaImported(e) => {
                saw_import = true;
                imports += 1;
                assert_eq!(
                    e.boundary, committed,
                    "the import's boundary is the committed-slot count at that moment"
                );
                assert_eq!(
                    e.boundary % (round_slots * EVERY),
                    0,
                    "imports land only at gossip-cadence round boundaries"
                );
                assert_eq!(e.from_shard, 99);
            }
            _ => {}
        }
    }
    assert_eq!(imports, 2, "both scripted frames were imported");
    for p in &peer_points {
        assert!(
            report.coverage.contains_point(p),
            "imported point {p:?} reached the final union"
        );
    }

    // Exports: disjoint deltas, drawn from the shard's own discoveries
    // only (imported peer points are echo-suppressed).
    let own = gained_points(&events);
    let published = published.lock().unwrap();
    assert!(!published.is_empty(), "the shard exported frames");
    let mut exported: HashSet<CoveragePoint> = HashSet::new();
    for frame in published.iter() {
        assert_eq!(frame.shard, 0, "exports carry the configured shard id");
        for p in &frame.delta {
            assert!(exported.insert(*p), "export deltas never overlap");
            assert!(own.contains(p), "exports carry only own discoveries");
            assert!(
                !peer_points.contains(p),
                "imported peer points are never re-exported"
            );
        }
        assert!(
            frame.favoured.len() <= dejavuzz::gossip::FAVOURED_PER_FRAME,
            "favoured exports are capped"
        );
    }
}

/// Strips wall-clock-free event streams down to comparable form (they
/// already are — `CampaignEvent` carries no clock — so this is just the
/// collected stream).
fn null_link_vs_plain(seed: u64, workers: usize, every: usize, iterations: usize) {
    let plain = run_collecting(base(seed).workers(workers), iterations);
    let nulled = run_collecting(
        base(seed)
            .workers(workers)
            .gossip_every(every)
            .gossip(shared_link(NullLink)),
        iterations,
    );
    assert_eq!(
        plain.1, nulled.1,
        "seed {seed}, {workers} workers, every {every}: event streams must be identical"
    );
    assert_eq!(plain.0.stats, nulled.0.stats, "reports must be identical");
    assert_eq!(plain.0.coverage, nulled.0.coverage);
}

#[test]
fn null_link_gossip_is_identical_to_no_gossip() {
    null_link_vs_plain(0xD15C0, 2, 1, 24);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The zero-peer identity holds across geometries: a silent link at
    /// any cadence never perturbs a single event.
    #[test]
    fn null_link_identity_holds_for_any_geometry(
        seed in 0u64..1024,
        workers in 1usize..3,
        every in 1usize..4,
    ) {
        null_link_vs_plain(seed, workers, every, 8 * workers);
    }
}
