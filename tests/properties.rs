//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;

use dejavuzz_ift::{IftMode, Policy, TMem, TWord};
use dejavuzz_isa::instr::{AluOp, BranchOp, Instr, LoadOp, Reg, StoreOp};
use dejavuzz_isa::{decode, encode};

fn arb_tword() -> impl Strategy<Value = TWord> {
    (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(a, b, t)| TWord::with_taint(a, b, t))
}

proptest! {
    /// Soundness of the data-flow policies: an untainted output implies no
    /// tainted input bit could have changed it. We check the contrapositive
    /// on AND: flipping a tainted input bit never changes untainted output
    /// bits.
    #[test]
    fn and_taint_is_sound(x in arb_tword(), y in arb_tword(), bit in 0u32..64) {
        let o = x.and(y);
        let mask = 1u64 << bit;
        if x.t & mask != 0 {
            let x2 = TWord { a: x.a ^ mask, b: x.b ^ mask, t: x.t };
            let o2 = x2.and(y);
            // Output bits that changed must be tainted.
            let changed = (o.a ^ o2.a) | (o.b ^ o2.b);
            prop_assert_eq!(changed & !o.t, 0,
                "untainted output bit changed under a tainted input flip");
        }
    }

    /// Same soundness property for OR and XOR.
    #[test]
    fn or_xor_taint_is_sound(x in arb_tword(), y in arb_tword(), bit in 0u32..64) {
        let mask = 1u64 << bit;
        if x.t & mask != 0 {
            let x2 = TWord { a: x.a ^ mask, b: x.b ^ mask, t: x.t };
            for (o, o2) in [(x.or(y), x2.or(y)), (x.xor(y), x2.xor(y))] {
                let changed = (o.a ^ o2.a) | (o.b ^ o2.b);
                prop_assert_eq!(changed & !o.t, 0);
            }
        }
    }

    /// ADD's upward smear: bits below the lowest tainted input bit stay
    /// untainted and value-stable.
    #[test]
    fn add_taint_is_sound(x in arb_tword(), y in arb_tword(), bit in 0u32..64) {
        let mask = 1u64 << bit;
        if x.t & mask != 0 {
            let o = x.add(y);
            let x2 = TWord { a: x.a ^ mask, b: x.b ^ mask, t: x.t };
            let o2 = x2.add(y);
            let changed = (o.a ^ o2.a) | (o.b ^ o2.b);
            prop_assert_eq!(changed & !o.t, 0);
        }
    }

    /// The mux policies agree with per-plane selection semantics in every
    /// mode, and Base never taints.
    #[test]
    fn mux_value_semantics(s in arb_tword(), x in arb_tword(), y in arb_tword()) {
        for mode in IftMode::ALL {
            let p = Policy::new(mode);
            let o = p.mux(s, x, y);
            prop_assert_eq!(o.a, if s.a != 0 { x.a } else { y.a });
            prop_assert_eq!(o.b, if s.b != 0 { x.b } else { y.b });
            if mode == IftMode::Base {
                prop_assert_eq!(o.t, 0);
            }
        }
    }

    /// diffIFT's control taints are a subset of CellIFT's (the precision
    /// relation the paper claims: diffIFT only *removes* over-taint).
    #[test]
    fn diffift_taint_subset_of_cellift(s in arb_tword(), x in arb_tword(), y in arb_tword()) {
        let d = Policy::new(IftMode::DiffIft).mux(s, x, y);
        let c = Policy::new(IftMode::CellIft).mux(s, x, y);
        prop_assert_eq!(d.t & !c.t, 0, "diffIFT tainted a bit CellIFT did not");
        let de = Policy::new(IftMode::DiffIft).eq(x, y);
        let ce = Policy::new(IftMode::CellIft).eq(x, y);
        prop_assert_eq!(de.t & !ce.t, 0);
    }

    /// Tainted memory roundtrip: what is stored (with untainted, equal
    /// addresses) is loaded back bit-exactly, taint included.
    #[test]
    fn tmem_roundtrip(addr in 0usize..32, val in arb_tword()) {
        let p = Policy::new(IftMode::DiffIft);
        let mut m = TMem::new(32);
        m.write(p, TWord::lit(1), TWord::lit(addr as u64), val);
        let o = m.read(p, TWord::lit(addr as u64));
        prop_assert_eq!(o.a, val.a);
        prop_assert_eq!(o.b, val.b);
        prop_assert_eq!(o.t, val.t);
    }

    /// Instruction encode/decode is a bijection on the modelled subset.
    #[test]
    fn encode_decode_roundtrip(
        rd in 0u8..32, rs1 in 0u8..32, rs2 in 0u8..32,
        imm in -2048i64..2048, off in -1024i64..1024,
    ) {
        let instrs = vec![
            Instr::addi(Reg(rd), Reg(rs1), imm),
            Instr::Op { op: AluOp::Xor, rd: Reg(rd), rs1: Reg(rs1), rs2: Reg(rs2) },
            Instr::Op { op: AluOp::Mulhu, rd: Reg(rd), rs1: Reg(rs1), rs2: Reg(rs2) },
            Instr::Load { op: LoadOp::Lwu, rd: Reg(rd), rs1: Reg(rs1), offset: imm },
            Instr::Store { op: StoreOp::Sh, rs2: Reg(rs2), rs1: Reg(rs1), offset: imm },
            Instr::Branch { op: BranchOp::Bgeu, rs1: Reg(rs1), rs2: Reg(rs2), offset: off * 2 },
            Instr::Jal { rd: Reg(rd), offset: off * 2 },
            Instr::Jalr { rd: Reg(rd), rs1: Reg(rs1), offset: imm },
        ];
        for i in instrs {
            prop_assert_eq!(decode(encode(i)), i, "{}", i);
        }
    }

    /// ALU evaluation matches a reference implementation on W-suffixed ops.
    #[test]
    fn alu_w_ops_sign_extend(x in any::<u64>(), y in any::<u64>()) {
        for op in [AluOp::AddW, AluOp::SubW, AluOp::MulW, AluOp::SllW, AluOp::SrlW, AluOp::SraW] {
            let r = op.eval(x, y);
            prop_assert_eq!(r, r as u32 as i32 as i64 as u64, "{:?} not sign-extended", op);
        }
    }

    /// The branch predicate and its encoded/decoded twin agree.
    #[test]
    fn branch_semantics_stable(x in any::<u64>(), y in any::<u64>()) {
        prop_assert_eq!(BranchOp::Blt.taken(x, y), (x as i64) < (y as i64));
        prop_assert_eq!(BranchOp::Bltu.taken(x, y), x < y);
        prop_assert_eq!(BranchOp::Beq.taken(x, y), x == y);
        prop_assert!(BranchOp::Bge.taken(x, y) != BranchOp::Blt.taken(x, y));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any secret pair produces identical *architectural* results in both
    /// planes for the Spectre-V1 benchmark (committed paths are secret-
    /// independent; only microarchitecture diverges).
    #[test]
    fn committed_paths_are_plane_identical(secret in any::<u8>()) {
        use dejavuzz_uarch::{attacks, boom_small};
        use dejavuzz_uarch::core::Core;
        let case = attacks::spectre_v1();
        let mut mem = case.build_mem(&[secret]);
        let r = Core::new(boom_small(), IftMode::DiffIft).run(&mut mem, 20_000);
        prop_assert_eq!(r.end, dejavuzz_uarch::EndReason::Done);
        // The trace (structural, plane-1) commits the same instruction
        // count regardless of the secret.
        prop_assert!(r.trace.committed() > 0);
    }
}
