//! Integration tests for campaign persistence: the resume-equivalence
//! property (a snapshotted-then-resumed run is bit-identical to an
//! uninterrupted one), the shard-merge union semantics, and end-to-end
//! codec robustness against truncation/corruption/version skew.

use dejavuzz::backend::BackendSpec;
use dejavuzz::builder::CampaignBuilder;
use dejavuzz::campaign::FuzzerOptions;
use dejavuzz::executor::ExecutorReport;
use dejavuzz::snapshot::{merge_snapshots, CampaignSnapshot};
use dejavuzz_ift::CoverageMatrix;
use dejavuzz_uarch::boom_small;

/// The shared builder baseline of this suite: behavioural BOOM with the
/// given pool geometry; individual tests chain halt/snapshot/resume on
/// clones.
fn campaign(opts: FuzzerOptions, workers: usize, seed: u64) -> CampaignBuilder {
    CampaignBuilder::new()
        .backend(BackendSpec::behavioural(boom_small()))
        .options(opts)
        .workers(workers)
        .seed(seed)
}

/// Field-by-field deep equality for executor reports (the struct has no
/// `PartialEq` because `WorkerSummary` matrices want order-insensitive
/// comparison).
fn assert_reports_identical(a: &ExecutorReport, b: &ExecutorReport) {
    assert_eq!(a.stats, b.stats, "stats (curve, windows, bugs, counters)");
    assert_eq!(a.coverage.sorted_points(), b.coverage.sorted_points());
    assert_eq!(a.shared_points, b.shared_points);
    assert_eq!(a.corpus_retained, b.corpus_retained);
    assert_eq!(a.corpus_evicted, b.corpus_evicted);
    assert_eq!(a.workers.len(), b.workers.len());
    for (wa, wb) in a.workers.iter().zip(&b.workers) {
        assert_eq!(wa.worker, wb.worker);
        assert_eq!(wa.iterations, wb.iterations, "worker {}", wa.worker);
        assert_eq!(
            wa.observed.sorted_points(),
            wb.observed.sorted_points(),
            "worker {}",
            wa.worker
        );
    }
}

/// The headline acceptance property: for fixed `(seed, workers)`, halting
/// at round k (any k — aligned or not with the batch geometry) and
/// resuming from the snapshot reproduces the uninterrupted run exactly:
/// same coverage, same curve, same bugs, same per-worker accounting.
#[test]
fn resume_is_bit_identical_to_uninterrupted_run() {
    const TOTAL: usize = 24;
    for workers in [1, 3] {
        let orch = campaign(FuzzerOptions::default(), workers, 0xCAFE);
        let full = orch.clone().build().unwrap().run(TOTAL);
        let mut interrupted = 0;
        for halt in [1, 9, 14] {
            let (partial, snap) = orch
                .clone()
                .halt_after(halt)
                .build()
                .unwrap()
                .run_snapshotting(TOTAL);
            // halt lands on the next round boundary; boundaries past the
            // budget mean the run completed instead — resume must then be
            // an exact no-op, so the equivalence check below still bites.
            if partial.stats.iterations < TOTAL {
                interrupted += 1;
            }
            assert_eq!(snap.completed, partial.stats.iterations);

            // Round-trip the snapshot through the wire format, as a real
            // restart would.
            let snap = CampaignSnapshot::from_bytes(&snap.to_bytes()).unwrap();
            let resumed = orch
                .clone()
                .resume(snap)
                .build()
                .expect("same backend + options")
                .run(TOTAL);
            assert_reports_identical(&full, &resumed);
        }
        assert!(
            interrupted >= 2,
            "{workers} workers: most halt points must truly interrupt"
        );
    }
}

/// Resuming with a target the snapshot already reached is a clean no-op:
/// the report is exactly the snapshot state.
#[test]
fn resume_past_target_reports_snapshot_state() {
    let orch = campaign(FuzzerOptions::default(), 2, 7);
    let (report, snap) = orch.clone().build().unwrap().run_snapshotting(16);
    let resumed = orch.resume(snap).build().unwrap().run(16);
    assert_reports_identical(&report, &resumed);
}

/// Chained resume: snapshot, resume to a later snapshot, resume again —
/// persistence composes across arbitrarily many restarts.
#[test]
fn chained_resumes_compose() {
    let orch = campaign(FuzzerOptions::default(), 2, 11);
    let full = orch.clone().build().unwrap().run(24);

    let (_, snap1) = orch
        .clone()
        .halt_after(5)
        .build()
        .unwrap()
        .run_snapshotting(24);
    let (_, snap2) = orch
        .clone()
        .resume(snap1)
        .halt_after(17)
        .build()
        .unwrap()
        .run_snapshotting(24);
    let resumed = orch.resume(snap2).build().unwrap().run(24);
    assert_reports_identical(&full, &resumed);
}

/// The ablation variants snapshot/resume too (the DejaVuzz⁻ corpus is
/// disabled state that must survive the round trip).
#[test]
fn ablation_variant_resumes_identically() {
    let orch = campaign(FuzzerOptions::dejavuzz_minus(), 2, 3);
    let full = orch.clone().build().unwrap().run(16);
    let (_, snap) = orch
        .clone()
        .halt_after(6)
        .build()
        .unwrap()
        .run_snapshotting(16);
    let resumed = orch.resume(snap).build().unwrap().run(16);
    assert_reports_identical(&full, &resumed);
    assert_eq!(resumed.corpus_retained, 0, "the ablation retains nothing");
}

/// The merge acceptance property: merging per-shard snapshots yields
/// exactly the union (`SharedCoverage` semantics) of per-shard
/// observations, with bug reports deduplicated by `dedup_key()` and
/// counters summed.
#[test]
fn shard_merge_equals_exact_union_with_deduped_bugs() {
    let shard = |id: u32, seed: u64| {
        campaign(FuzzerOptions::default(), 2, seed)
            .shard_id(id)
            .build()
            .unwrap()
            .run_snapshotting(20)
    };
    let (report0, snap0) = shard(0, 101);
    let (report1, snap1) = shard(1, 202);
    let merged = merge_snapshots(&[snap0, snap1]);

    let mut union = CoverageMatrix::new();
    union.merge(&report0.coverage);
    union.merge(&report1.coverage);
    assert_eq!(
        merged.coverage.sorted_points(),
        union.sorted_points(),
        "merged coverage is the exact union of shard observations"
    );
    assert!(
        merged.summed_points >= merged.coverage.points(),
        "the naive per-shard sum can only over-count"
    );
    assert_eq!(
        merged.stats.iterations,
        report0.stats.iterations + report1.stats.iterations
    );
    assert_eq!(
        merged.stats.sim_runs,
        report0.stats.sim_runs + report1.stats.sim_runs
    );

    // Bug dedup: every merged key appears in some shard, no key twice.
    let mut keys: Vec<_> = merged.stats.bugs.iter().map(|b| b.dedup_key()).collect();
    keys.sort();
    let before = keys.len();
    keys.dedup();
    assert_eq!(keys.len(), before, "no duplicate dedup keys after merge");
    let shard_keys: Vec<_> = report0
        .stats
        .bugs
        .iter()
        .chain(&report1.stats.bugs)
        .map(|b| b.dedup_key())
        .collect();
    for k in &keys {
        assert!(shard_keys.contains(k), "merged bug {k:?} came from a shard");
    }
    let mut expected = shard_keys.clone();
    expected.sort();
    expected.dedup();
    assert_eq!(
        keys, expected,
        "merge keeps exactly the distinct shard keys"
    );
}

/// Codec robustness, end to end on a real campaign snapshot: truncations
/// and corruptions decode to structured errors — never a panic, never a
/// silently wrong snapshot.
#[test]
fn real_snapshot_survives_hostile_bytes() {
    let (_, snap) = campaign(FuzzerOptions::default(), 2, 9)
        .build()
        .unwrap()
        .run_snapshotting(12);
    let bytes = snap.to_bytes();
    assert_eq!(CampaignSnapshot::from_bytes(&bytes).unwrap(), snap);

    // Every possible truncation point.
    for cut in 0..bytes.len() {
        assert!(
            CampaignSnapshot::from_bytes(&bytes[..cut]).is_err(),
            "truncation at {cut} must fail"
        );
    }
    // Byte corruption at a spread of offsets (checksum catches payload
    // flips; header flips hit magic/version/length validation).
    for i in (0..bytes.len()).step_by(7) {
        let mut bad = bytes.clone();
        bad[i] ^= 0x5A;
        assert!(
            CampaignSnapshot::from_bytes(&bad).is_err(),
            "corruption at {i} must fail"
        );
    }
    // Empty and garbage inputs.
    assert!(CampaignSnapshot::from_bytes(&[]).is_err());
    assert!(CampaignSnapshot::from_bytes(b"not a snapshot at all").is_err());
}

/// File-level round trip through the atomic save path.
#[test]
fn snapshot_files_round_trip_on_disk() {
    let (_, snap) = campaign(FuzzerOptions::default(), 1, 5)
        .build()
        .unwrap()
        .run_snapshotting(8);
    let path =
        std::env::temp_dir().join(format!("dejavuzz-persist-e2e-{}.snap", std::process::id()));
    snap.save(&path).unwrap();
    let loaded = CampaignSnapshot::load(&path).unwrap();
    assert_eq!(loaded, snap);
    std::fs::remove_file(&path).unwrap();
}

/// The cross-round pipeline's persistence property: a halt taken while
/// a pre-drawn round is still in flight persists that round verbatim
/// (its plan, dispatch-time gain state and the coverage committed
/// behind it), and a resume re-dispatches it instead of re-planning —
/// splicing bit-identically into the uninterrupted pipelined run,
/// through the wire format as a real restart would.
#[test]
fn pipelined_halt_resume_splices_bit_identically() {
    use dejavuzz::scheduler::SchedulerSpec;

    const TOTAL: usize = 24;
    for workers in [1, 3] {
        let orch = campaign(FuzzerOptions::default(), workers, 0x717E)
            .scheduler(SchedulerSpec::WorkStealing)
            .pipeline_lag(1);
        let full = orch.clone().build().unwrap().run(TOTAL);
        let mut interrupted = 0;
        let mut pending_seen = 0;
        for halt in [1, 9, 14] {
            let (partial, snap) = orch
                .clone()
                .halt_after(halt)
                .build()
                .unwrap()
                .run_snapshotting(TOTAL);
            if partial.stats.iterations < TOTAL {
                interrupted += 1;
            }
            assert_eq!(snap.completed, partial.stats.iterations);
            let snap = CampaignSnapshot::from_bytes(&snap.to_bytes()).unwrap();
            if let Some(p) = &snap.pending {
                pending_seen += 1;
                assert_eq!(p.first_slot, snap.completed);
                assert!(!p.slots.is_empty(), "a pending round has slots");
            }
            let resumed = orch
                .clone()
                .resume(snap)
                .build()
                .expect("same backend + options")
                .run(TOTAL);
            assert_reports_identical(&full, &resumed);
        }
        assert!(
            interrupted >= 2,
            "{workers} workers: most halt points must truly interrupt"
        );
        assert!(
            pending_seen >= 2,
            "{workers} workers: mid-run halts must capture an in-flight round"
        );
    }
}

/// Pipelined persistence composes: snapshot mid-pipeline, resume to a
/// later mid-pipeline snapshot, resume again — every splice lands on
/// the uninterrupted run.
#[test]
fn chained_pipelined_resumes_compose() {
    use dejavuzz::scheduler::SchedulerSpec;

    let orch = campaign(FuzzerOptions::default(), 2, 0xC4A1)
        .scheduler(SchedulerSpec::WorkStealing)
        .pipeline_lag(2);
    let full = orch.clone().build().unwrap().run(24);

    let (_, snap1) = orch
        .clone()
        .halt_after(5)
        .build()
        .unwrap()
        .run_snapshotting(24);
    let snap1 = CampaignSnapshot::from_bytes(&snap1.to_bytes()).unwrap();
    let (_, snap2) = orch
        .clone()
        .resume(snap1)
        .halt_after(17)
        .build()
        .unwrap()
        .run_snapshotting(24);
    let snap2 = CampaignSnapshot::from_bytes(&snap2.to_bytes()).unwrap();
    let resumed = orch.resume(snap2).build().unwrap().run(24);
    assert_reports_identical(&full, &resumed);
}

/// Backward compatibility with v2 snapshot files: a real campaign's
/// snapshot re-encoded exactly as the v2 writer produced it (scheduling
/// tail, no scheduler-state blob) must load under the v3 reader and
/// resume bit-identically to the uninterrupted run.
#[test]
fn v2_snapshot_files_still_load_and_resume() {
    use dejavuzz_persist::{frame, Encoder, Persist};

    const TOTAL: usize = 24;
    let orch = campaign(FuzzerOptions::default(), 2, 0x2BAC);
    let full = orch.clone().build().unwrap().run(TOTAL);
    let (_, snap) = orch
        .clone()
        .halt_after(9)
        .build()
        .unwrap()
        .run_snapshotting(TOTAL);
    assert!(snap.completed < TOTAL, "the halt must truly interrupt");
    assert!(snap.scheduler_state.is_empty(), "built-ins are stateless");

    // Exactly the v2 wire layout: v1 prefix + v2 scheduling tail.
    let mut enc = Encoder::new();
    enc.u32(snap.shard_id);
    enc.str(&snap.backend);
    enc.usize(snap.workers);
    enc.u64(snap.seed);
    enc.usize(snap.batch);
    snap.opts.encode(&mut enc);
    enc.usize(snap.completed);
    enc.f64(snap.gain_avg);
    enc.usize(snap.gain_samples);
    snap.sched_rng.encode(&mut enc);
    snap.corpus.encode(&mut enc);
    snap.coverage.encode(&mut enc);
    snap.stats.encode(&mut enc);
    snap.worker_states.encode(&mut enc);
    snap.scheduler.encode(&mut enc);
    snap.policy.encode(&mut enc);
    snap.policy_state.encode(&mut enc);
    enc.f64(snap.corpus.energy_cache());
    let v2_bytes = frame::seal(dejavuzz::snapshot::SNAPSHOT_MAGIC, 2, &enc.into_bytes());

    let loaded = CampaignSnapshot::from_bytes(&v2_bytes).unwrap();
    assert_eq!(loaded, snap, "every v2 field survives the version skew");
    let resumed = orch.resume(loaded).build().unwrap().run(TOTAL);
    assert_reports_identical(&full, &resumed);
}
