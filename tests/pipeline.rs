//! Integration tests for the shared-corpus pipeline executor: the
//! determinism, exact-union and façade-compatibility guarantees the
//! refactor is specified against.

use dejavuzz::backend::BackendSpec;
use dejavuzz::campaign::{parallel_run, Campaign, FuzzerOptions};
use dejavuzz::executor;
use dejavuzz_ift::CoverageMatrix;
use dejavuzz_uarch::boom_small;

fn boom() -> BackendSpec {
    BackendSpec::behavioural(boom_small())
}

/// Same seed + same worker count ⇒ identical bug set (and identical
/// everything else that feeds it). Thread timing must not leak into
/// results.
#[test]
fn executor_is_deterministic_per_seed_and_worker_count() {
    let a = executor::run(boom(), FuzzerOptions::default(), 2, 20, 0xD15C0);
    let b = executor::run(boom(), FuzzerOptions::default(), 2, 20, 0xD15C0);
    assert_eq!(a.stats.bugs, b.stats.bugs, "identical bug set");
    assert_eq!(
        a.stats.coverage_curve, b.stats.coverage_curve,
        "identical exact curve"
    );
    assert_eq!(a.stats.first_bug_iteration, b.stats.first_bug_iteration);
    assert_eq!(a.coverage.sorted_points(), b.coverage.sorted_points());
    assert_eq!(a.stats.sim_runs, b.stats.sim_runs);
    assert_eq!(a.corpus_retained, b.corpus_retained);
    for (wa, wb) in a.workers.iter().zip(&b.workers) {
        assert_eq!(wa.iterations, wb.iterations);
        assert_eq!(wa.observed.sorted_points(), wb.observed.sorted_points());
    }
}

/// The parallel final coverage is the *exact union* of what the workers
/// observed — never the inflated pointwise sum the old end-of-run merge
/// approximated.
#[test]
fn parallel_coverage_is_exact_union_of_worker_observations() {
    let report = executor::run(boom(), FuzzerOptions::default(), 3, 24, 42);

    let mut union = CoverageMatrix::new();
    let mut inflated_sum = 0;
    for w in &report.workers {
        union.merge(&w.observed);
        inflated_sum += w.observed.points();
    }

    assert_eq!(
        report.coverage.sorted_points(),
        union.sorted_points(),
        "final coverage == union of per-worker observations"
    );
    assert_eq!(
        report.shared_points,
        union.points(),
        "concurrent union agrees"
    );
    assert_eq!(report.stats.coverage(), union.points(), "curve tail agrees");
    assert!(
        inflated_sum > union.points(),
        "workers overlap ({inflated_sum} summed vs {} distinct), so a pointwise \
         sum would have over-reported",
        union.points()
    );
}

/// More workers on the same total budget keep finding the bugs the
/// single-worker pipeline finds (the pool changes scheduling, not the
/// oracle).
#[test]
fn pool_still_finds_bugs_on_vulnerable_boom() {
    let report = executor::run(boom(), FuzzerOptions::default(), 4, 40, 3);
    assert!(
        !report.stats.bugs.is_empty(),
        "40 pooled iterations must surface a leak"
    );
    assert!(report.stats.first_bug_iteration.is_some());
}

/// The historical `parallel_run` signature survives as a façade over the
/// executor: `threads * iterations_per_thread` total iterations, exact
/// curve included (the old implementation returned an *empty* curve).
#[test]
fn parallel_run_facade_matches_executor() {
    let stats = parallel_run(boom(), FuzzerOptions::default(), 2, 5, 77);
    assert_eq!(stats.iterations, 10);
    assert_eq!(
        stats.coverage_curve.len(),
        10,
        "exact curve, one point per iteration"
    );
    assert!(
        stats.coverage_curve.windows(2).all(|w| w[0] <= w[1]),
        "monotone"
    );
    let direct = executor::run(boom(), FuzzerOptions::default(), 2, 10, 77);
    assert_eq!(stats.bugs, direct.stats.bugs);
    assert_eq!(stats.coverage_curve, direct.stats.coverage_curve);
}

/// The single-worker `Campaign` façade and the ablation constructors keep
/// their public behaviour on top of the new pipeline internals.
#[test]
fn campaign_facade_keeps_public_behaviour() {
    let mut campaign = Campaign::with_backend(boom(), FuzzerOptions::default(), 9);
    let stats = campaign.run(12);
    assert_eq!(stats.iterations, 12);
    assert_eq!(stats.coverage_curve.len(), 12);
    assert_eq!(stats.coverage(), campaign.coverage().points());

    for opts in [
        FuzzerOptions::dejavuzz_star(),
        FuzzerOptions::dejavuzz_minus(),
        FuzzerOptions::no_liveness(),
    ] {
        let stats = Campaign::with_backend(boom(), opts, 9).run(6);
        assert_eq!(stats.iterations, 6, "ablation variants run unchanged");
    }
}

/// DejaVuzz⁻ means *no* coverage feedback — including through the corpus:
/// the ablation must not retain or reschedule gain-keyed seeds, or
/// Figure 7's middle curve stops isolating the mutation feedback.
#[test]
fn dejavuzz_minus_runs_without_coverage_driven_scheduling() {
    let mut campaign = Campaign::with_backend(boom(), FuzzerOptions::dejavuzz_minus(), 5);
    campaign.run(20);
    assert!(campaign.corpus().is_empty(), "the ablation retains nothing");

    let report = executor::run(boom(), FuzzerOptions::dejavuzz_minus(), 2, 16, 5);
    assert_eq!(report.corpus_retained, 0, "pooled ablation retains nothing");
}

/// The corpus visibly feeds back into the campaign: interesting seeds are
/// retained and rescheduled.
#[test]
fn campaign_retains_interesting_seeds() {
    let mut campaign = Campaign::with_backend(boom(), FuzzerOptions::default(), 5);
    campaign.run(25);
    assert!(
        !campaign.corpus().is_empty(),
        "25 iterations on vulnerable BOOM must retain at least one gaining seed"
    );
}
