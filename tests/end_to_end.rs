//! Cross-crate integration tests: the full stack from assembler through
//! swapMem, the core models, IFT and the three fuzzing phases.

use dejavuzz::campaign::{Campaign, FuzzerOptions};
use dejavuzz::gen::WindowType;
use dejavuzz::phases::{phase1, phase2, phase3, PhaseOptions};
use dejavuzz::Seed;
use dejavuzz_ift::{CoverageMatrix, IftMode};
use dejavuzz_uarch::core::Core;
use dejavuzz_uarch::{attacks, boom_small, xiangshan_minimal};

#[test]
fn all_five_attack_benchmarks_leak_on_boom() {
    for case in attacks::all() {
        let mut mem = case.build_mem(&[0x5A]);
        let r = Core::new(boom_small(), IftMode::DiffIft).run(&mut mem, 20_000);
        assert!(r.window().is_some(), "{}: window must trigger", case.name);
        assert!(
            r.sinks
                .iter()
                .any(|s| s.module == "dcache" && s.exploitable()),
            "{}: dcache leak expected",
            case.name
        );
    }
}

#[test]
fn all_five_attack_benchmarks_leak_on_xiangshan() {
    for case in attacks::all() {
        let mut mem = case.build_mem(&[0x5A]);
        let r = Core::new(xiangshan_minimal(), IftMode::DiffIft).run(&mut mem, 20_000);
        assert!(r.window().is_some(), "{}: window must trigger", case.name);
    }
}

#[test]
fn diffift_taint_stays_bounded_while_cellift_explodes() {
    // The Figure 6 contrast, end to end.
    let case = attacks::spectre_v1();
    let mut mem = case.build_mem(&[0x5A]);
    let diff = Core::new(boom_small(), IftMode::DiffIft).run(&mut mem, 20_000);
    let mut mem = case.build_mem(&[0x5A]);
    let cell = Core::new(boom_small(), IftMode::CellIft).run(&mut mem, 20_000);
    assert!(
        cell.taint_log.peak_taint() > 10 * diff.taint_log.peak_taint(),
        "CellIFT {} vs diffIFT {}",
        cell.taint_log.peak_taint(),
        diff.taint_log.peak_taint()
    );
}

#[test]
fn diffift_fn_variant_suppresses_control_taints() {
    // Identical secrets in both variants: data taints persist, control
    // taints stop growing (Figure 6's diffIFT_FN curve).
    let case = attacks::spectre_v1();
    let mut mem = case.build_mem_with(&[0x5A], true);
    let fnr = Core::new(boom_small(), IftMode::DiffIft).run(&mut mem, 20_000);
    let mut mem = case.build_mem(&[0x5A]);
    let full = Core::new(boom_small(), IftMode::DiffIft).run(&mut mem, 20_000);
    assert!(fnr.taint_log.peak_taint() < full.taint_log.peak_taint());
    assert!(
        fnr.taint_log.peak_taint() > 0,
        "data taints still propagate"
    );
}

#[test]
fn pipeline_finds_meltdown_leak_end_to_end() {
    let mut backend = dejavuzz::BehaviouralBackend::new(boom_small());
    let opts = PhaseOptions::default();
    let mut cov = CoverageMatrix::new();
    let mut leaked = false;
    for e in 0..40 {
        let seed = Seed::new(WindowType::MemPageFault, e);
        let p1 = phase1(&mut backend, &seed, &opts).unwrap();
        if !p1.triggered {
            continue;
        }
        let p2 = phase2(&mut backend, &seed, &p1, &mut cov, &opts).unwrap();
        let p3 = phase3(&mut backend, &p1, &p2, 0, &opts).unwrap();
        if !p3.leaks.is_empty() {
            leaked = true;
            assert_eq!(p3.leaks[0].attack, dejavuzz::AttackType::Meltdown);
            break;
        }
    }
    assert!(leaked, "the pipeline must find the Meltdown leak");
}

#[test]
fn campaigns_on_both_cores_find_bugs() {
    for cfg in [boom_small(), xiangshan_minimal()] {
        let mut campaign = Campaign::with_backend(
            dejavuzz::BackendSpec::behavioural(cfg),
            FuzzerOptions::default(),
            0xABCD,
        );
        let stats = campaign.run(40);
        assert!(
            !stats.bugs.is_empty(),
            "{}: 40 iterations must surface a leak",
            cfg.name
        );
    }
}

#[test]
fn fixed_hardware_survives_the_same_campaign() {
    // Ablation: a core with every bug switched off (and no faulting-load
    // forwarding) yields no Meltdown-class encoded leaks.
    let mut cfg = boom_small();
    cfg.bugs = dejavuzz_uarch::BugSet::NONE;
    let mut campaign = Campaign::with_backend(
        dejavuzz::BackendSpec::behavioural(cfg),
        FuzzerOptions::default(),
        0xABCD,
    );
    let stats = campaign.run(30);
    let meltdown_encoded = stats
        .bugs
        .iter()
        .filter(|b| {
            b.attack == dejavuzz::AttackType::Meltdown
                && matches!(b.channel, dejavuzz::LeakChannel::Encoded { .. })
        })
        .count();
    assert_eq!(
        meltdown_encoded, 0,
        "no faulting-load forwarding => no cross-privilege encoded leak: {:?}",
        stats.bugs
    );
}

#[test]
fn golden_and_uarch_architectural_state_agree() {
    // Co-simulation: run a deterministic program on the golden ISA
    // simulator and on the OoO core; committed architectural results must
    // match (speculation may not change architecture).
    use dejavuzz_isa::asm::ProgramBuilder;
    use dejavuzz_isa::instr::{AluOp, BranchOp, Instr, Reg};
    use dejavuzz_isa::sim::IsaSim;
    use dejavuzz_swapmem::{PacketKind, SecretPolicy, SwapMem, SwapPacket, DEFAULT_LAYOUT};

    let l = DEFAULT_LAYOUT;
    let mut b = ProgramBuilder::new(l.swappable);
    b.push(Instr::addi(Reg::A0, Reg::ZERO, 5));
    b.push(Instr::addi(Reg::A1, Reg::ZERO, 0));
    b.label("loop");
    b.push(Instr::Op {
        op: AluOp::Add,
        rd: Reg::A1,
        rs1: Reg::A1,
        rs2: Reg::A0,
    });
    b.push(Instr::addi(Reg::A0, Reg::A0, -1));
    b.branch_to(
        Instr::Branch {
            op: BranchOp::Bne,
            rs1: Reg::A0,
            rs2: Reg::ZERO,
            offset: 0,
        },
        "loop",
    );
    b.push(Instr::Op {
        op: AluOp::Mul,
        rd: Reg::A2,
        rs1: Reg::A1,
        rs2: Reg::A1,
    });
    b.push(Instr::sd(Reg::A2, Reg::GP, 0));
    b.push(Instr::Ecall);
    let program = b.assemble();

    // Golden run.
    let mut golden_mem = SwapMem::new(l);
    golden_mem.write_program(&program);
    let mut golden = IsaSim::new(l.swappable);
    golden.set_reg(Reg::GP, 0x8000);
    let trap = golden.run(&mut golden_mem, 10_000);
    assert_eq!(trap, Some(dejavuzz_isa::Exception::Ecall));

    // Microarchitectural run (same program as a single packet). The OoO
    // core starts with zeroed registers, so pre-set GP via an addi chain
    // instead: rebuild with GP setup inline.
    let mut b2 = ProgramBuilder::new(l.swappable);
    b2.push(Instr::Lui {
        rd: Reg::GP,
        imm: 0x8000,
    });
    for (_, w) in program.iter() {
        b2.push(dejavuzz_isa::decode(w));
    }
    let mut mem = SwapMem::new(l);
    mem.set_secret_policy(SecretPolicy::AlwaysReadable);
    mem.set_schedule(vec![SwapPacket::new(
        "cosim",
        PacketKind::Transient,
        b2.assemble(),
    )]);
    let r = Core::new(boom_small(), IftMode::Base).run(&mut mem, 10_000);
    assert_eq!(r.end, dejavuzz_uarch::EndReason::Done);

    // a1 = 5+4+3+2+1 = 15, a2 = 225; the store writes 225 to 0x8000.
    assert_eq!(golden.reg(Reg::A1), 15);
    assert_eq!(golden.reg(Reg::A2), 225);
    assert_eq!(
        golden_mem
            .load_t(dejavuzz_ift::TWord::lit(0x8000), 8)
            .unwrap()
            .a,
        225
    );
    assert_eq!(
        mem.load_t(dejavuzz_ift::TWord::lit(0x8000), 8).unwrap().a,
        225
    );
}

#[test]
fn liveness_ablation_reclassifies_residue() {
    // §6.3: without liveness annotations, RoB/regfile residue turns into
    // reported "leaks".
    let cfg = boom_small();
    let with = Campaign::with_backend(
        dejavuzz::BackendSpec::behavioural(cfg),
        FuzzerOptions::default(),
        0x5151,
    )
    .run(25);
    let without = Campaign::with_backend(
        dejavuzz::BackendSpec::behavioural(cfg),
        FuzzerOptions::no_liveness(),
        0x5151,
    )
    .run(25);
    assert!(
        without.bugs.len() >= with.bugs.len(),
        "removing the filter can only add classifications: {} vs {}",
        without.bugs.len(),
        with.bugs.len()
    );
}
