//! The observability determinism contract (ISSUE 8's hard constraint):
//! metrics live entirely off the commit path, so a campaign's stdout
//! telemetry and final snapshot bytes are identical per
//! `(seed, workers, batch, lag)` whether metric recording is on, off,
//! or being scraped concurrently from another thread mid-run.
//!
//! The exhaustive matrix covers workers 1–4 × {round-robin, steal,
//! steal+lag}; the property test then samples seeds across the same
//! geometry space. Everything asserts on *campaign output bytes* only —
//! instrument contents are wall-clock derived and legitimately differ
//! run over run.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use dejavuzz::backend::BackendSpec;
use dejavuzz::builder::CampaignBuilder;
use dejavuzz::observer::{CampaignObserver, JsonLinesObserver};
use dejavuzz::scheduler::SchedulerSpec;
use dejavuzz_uarch::boom_small;
use proptest::prelude::*;

/// Serialises tests around the process-wide recording flag: this
/// binary's tests run in parallel, and a concurrent `set_recording`
/// toggle from another test would turn a deliberate on/off comparison
/// into a race.
fn recording_serial() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Restores recording to its default (on) even if an assertion panics
/// mid-test, so one failure cannot cascade into the other tests.
struct RecordingGuard;
impl Drop for RecordingGuard {
    fn drop(&mut self) {
        dejavuzz_telemetry::set_recording(true);
    }
}

#[derive(Clone, Default)]
struct Shared(Arc<Mutex<Vec<u8>>>);
impl std::io::Write for Shared {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// One campaign mode of the matrix: scheduler plus pipeline lag.
#[derive(Clone, Debug)]
struct Mode {
    scheduler: SchedulerSpec,
    lag: usize,
}

const MODES: [Mode; 3] = [
    Mode {
        scheduler: SchedulerSpec::RoundRobin,
        lag: 0,
    },
    Mode {
        scheduler: SchedulerSpec::WorkStealing,
        lag: 0,
    },
    Mode {
        scheduler: SchedulerSpec::WorkStealing,
        lag: 1,
    },
];

/// Runs one campaign and returns the bytes that must be invariant under
/// recording state: the full JSON telemetry stream and the final
/// snapshot encoding.
fn run_campaign(seed: u64, workers: usize, mode: Mode, iterations: usize) -> (Vec<u8>, Vec<u8>) {
    let sink = Shared::default();
    let mut observers: Vec<Box<dyn CampaignObserver>> =
        vec![Box::new(JsonLinesObserver::new(sink.clone()))];
    let (_, snapshot) = CampaignBuilder::new()
        .backend(BackendSpec::behavioural(boom_small()))
        .workers(workers)
        .seed(seed)
        .scheduler(mode.scheduler)
        .pipeline_lag(mode.lag)
        .build()
        .unwrap()
        .run_observed(iterations, &mut observers);
    drop(observers);
    let stdout = sink.0.lock().unwrap().clone();
    (stdout, snapshot.to_bytes())
}

/// The exhaustive matrix: for every worker count 1–4 and every mode,
/// a metrics-recording run, a recording-disabled run and a run scraped
/// mid-flight by a concurrent exposition thread all produce identical
/// stdout and snapshot bytes.
#[test]
fn recording_on_off_and_scraped_runs_are_byte_identical() {
    let _serial = recording_serial();
    let _restore = RecordingGuard;
    for workers in 1..=4usize {
        for mode in MODES {
            let iterations = 6 * workers;
            dejavuzz_telemetry::set_recording(true);
            let baseline = run_campaign(0xDECAF, workers, mode.clone(), iterations);

            dejavuzz_telemetry::set_recording(false);
            let disabled = run_campaign(0xDECAF, workers, mode.clone(), iterations);
            assert_eq!(
                baseline, disabled,
                "recording off perturbed {workers} worker(s), {mode:?}"
            );

            // Scrape mid-run: a thread hammering both expositions while
            // the campaign executes — the render path only reads
            // atomics, so it must never perturb (or deadlock with) the
            // commit path.
            dejavuzz_telemetry::set_recording(true);
            let stop = Arc::new(AtomicBool::new(false));
            let scraper = {
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut scrapes = 0usize;
                    while !stop.load(Ordering::Relaxed) {
                        let text = dejavuzz_telemetry::global().render_prometheus();
                        assert!(text.contains("# TYPE dejavuzz_iterations_total counter"));
                        let json = dejavuzz_telemetry::global().render_json();
                        assert!(json.starts_with("{\"counters\":{"));
                        scrapes += 1;
                    }
                    scrapes
                })
            };
            let scraped = run_campaign(0xDECAF, workers, mode.clone(), iterations);
            stop.store(true, Ordering::Relaxed);
            let scrapes = scraper.join().expect("scraper panicked");
            assert!(scrapes > 0, "the scraper actually ran mid-campaign");
            assert_eq!(
                baseline, scraped,
                "concurrent scraping perturbed {workers} worker(s), {mode:?}"
            );
        }
    }
}

/// Recording a campaign populates the engine's instruments: committed
/// slots land in the iterations counter and the slot-run histogram, and
/// the end-of-run report folds into the gauges — while the instruments
/// stay invisible to campaign output (asserted above).
#[test]
fn recorded_campaign_populates_the_registry() {
    let _serial = recording_serial();
    let _restore = RecordingGuard;
    dejavuzz_telemetry::set_recording(true);
    let m = dejavuzz::metrics::handles();
    let iters_before = m.iterations_total.get();
    let slots_before = m.slot_run_nanos.count();
    let runs_before = m.runs_total.get();
    let mode = Mode {
        scheduler: SchedulerSpec::WorkStealing,
        lag: 1,
    };
    run_campaign(7, 2, mode, 12);
    assert_eq!(m.iterations_total.get(), iters_before + 12);
    assert_eq!(m.slot_run_nanos.count(), slots_before + 12);
    assert_eq!(m.runs_total.get(), runs_before + 1);
    assert!(m.busy_nanos.get() > 0, "report gauges were folded in");
    let json = dejavuzz::metrics::registry_json();
    assert!(json.contains("\"dejavuzz_iterations_total\""), "{json}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The on/off identity holds across sampled seeds and geometries,
    /// not just the pinned matrix seed.
    #[test]
    fn recording_toggle_never_perturbs_results(
        seed in 0u64..1024,
        workers in 1usize..4,
        mode_ix in 0usize..3,
    ) {
        let _serial = recording_serial();
        let _restore = RecordingGuard;
        let mode = MODES[mode_ix].clone();
        dejavuzz_telemetry::set_recording(true);
        let on = run_campaign(seed, workers, mode.clone(), 4 * workers);
        dejavuzz_telemetry::set_recording(false);
        let off = run_campaign(seed, workers, mode, 4 * workers);
        prop_assert_eq!(on, off);
    }
}
