//! Crash-injection and determinism suite for the process-pool backend:
//!
//! * a pool-of-1 campaign must equal the in-process campaign it wraps
//!   (same stats, same coverage, same bugs),
//! * a pool-of-M campaign must equal pool-of-1 regardless of how its
//!   racing workers interleave,
//! * a worker crash mid-campaign (injected at several different request
//!   ordinals) must never kill the campaign: with the retry landing on a
//!   respawned worker the results are *identical* to the uncrashed run,
//! * a worker that fails every attempt turns each affected run into a
//!   counted `failed_runs` entry — and the campaign still completes,
//! * a malformed reply frame is a structured [`BackendError::Worker`].
//!
//! Crash injection travels by environment variable into the spawned
//! `dejavuzz-simd` workers; tests that set process env serialize on a
//! local mutex so parallel test threads never see each other's knobs.

use std::sync::{Mutex, MutexGuard};

use dejavuzz::backend::{BackendError, BackendSpec, SimBackend};
use dejavuzz::campaign::CampaignStats;
use dejavuzz::gen::{self, Seed, WindowFill, WindowType};
use dejavuzz::procbackend::{
    worker_binary, ProcBackend, ABORT_AFTER_ENV, ABORT_UNLESS_RESPAWN_ENV, CORRUPT_AFTER_ENV,
};
use dejavuzz::CampaignBuilder;
use dejavuzz_ift::IftMode;
use dejavuzz_uarch::boom_small;

/// Serializes every test that spawns worker processes: the crash knobs
/// are process-global env, inherited by children at spawn time.
fn env_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

struct EnvKnob(&'static str);

impl EnvKnob {
    fn set(var: &'static str, value: impl ToString) -> Self {
        std::env::set_var(var, value.to_string());
        EnvKnob(var)
    }
}

impl Drop for EnvKnob {
    fn drop(&mut self) {
        std::env::remove_var(self.0);
    }
}

fn spec(s: &str) -> BackendSpec {
    BackendSpec::parse(s, boom_small()).expect("a valid backend spec")
}

fn campaign(backend: BackendSpec, seed: u64, iters: usize) -> CampaignStats {
    let report = CampaignBuilder::new()
        .backend(backend)
        .workers(2)
        .seed(seed)
        .build()
        .expect("a valid campaign configuration")
        .run(iters);
    report.stats
}

#[test]
fn worker_binary_is_discovered_next_to_the_test_target() {
    // `cargo test` builds every workspace binary before running tests,
    // so discovery (deps/ dir -> parent target dir) must succeed. Every
    // other test here relies on this.
    let _guard = env_lock();
    let bin = worker_binary().expect("dejavuzz-simd next to the test binary");
    assert!(bin.is_file(), "{} is not a file", bin.display());
}

#[test]
fn pool_of_one_equals_in_process() {
    let _guard = env_lock();
    let baseline = campaign(spec("netlist:small"), 0xD15C0, 10);
    let pooled = campaign(spec("proc:netlist:small:1"), 0xD15C0, 10);
    assert_eq!(baseline, pooled);
    assert!(pooled.iterations == 10 && pooled.failed_runs == 0);
}

#[test]
fn pool_of_m_is_deterministic_and_equals_pool_of_one() {
    let _guard = env_lock();
    let one = campaign(spec("proc:netlist:small:1"), 0xFEED, 12);
    let four_a = campaign(spec("proc:netlist:small:4"), 0xFEED, 12);
    let four_b = campaign(spec("proc:netlist:small:4"), 0xFEED, 12);
    assert_eq!(four_a, four_b, "racing completions must not change results");
    assert_eq!(one, four_a, "pool size must not change results");
}

/// The crash-isolation property, swept across crash points: kill the
/// worker before its N-th reply (first incarnation only), for several N.
/// Every campaign must complete crash-free from the caller's view —
/// stats identical to the uncrashed baseline, zero failed runs.
#[test]
fn a_crashing_worker_never_kills_or_perturbs_the_campaign() {
    let _guard = env_lock();
    let baseline = campaign(spec("proc:netlist:small:2"), 0xABAD, 8);
    assert_eq!(baseline.failed_runs, 0);
    for crash_at in [1, 2, 3, 7, 20] {
        let _arm = EnvKnob::set(ABORT_AFTER_ENV, crash_at);
        let _disarm = EnvKnob::set(ABORT_UNLESS_RESPAWN_ENV, 1);
        let crashed = campaign(spec("proc:netlist:small:2"), 0xABAD, 8);
        assert_eq!(baseline, crashed, "crash point {crash_at} changed results");
    }
}

/// A worker that aborts on *every* first request (respawns inherit the
/// knob) fails both the attempt and the retry: each run becomes a
/// counted backend failure, and the campaign still completes.
#[test]
fn persistent_crashes_count_failed_runs_and_complete() {
    let _guard = env_lock();
    let _arm = EnvKnob::set(ABORT_AFTER_ENV, 1);
    let stats = campaign(spec("proc:netlist:small:1"), 0xC0DE, 4);
    assert_eq!(stats.iterations, 4, "the campaign ran to completion");
    assert_eq!(stats.failed_runs, 4, "every run failed, none vanished");
    assert!(stats.bugs.is_empty() && stats.coverage() == 0);
}

/// Direct [`SimBackend`] probe: a corrupt reply frame (checksum
/// mismatch) on both the attempt and the respawn-retry surfaces as a
/// structured [`BackendError::Worker`] naming the malformed frame, and
/// the backend remains usable for the next request.
#[test]
fn malformed_reply_frames_are_structured_worker_errors() {
    let _guard = env_lock();
    let proc_spec = match spec("proc:netlist:small:1") {
        BackendSpec::Proc(p) => p,
        other => panic!("parsed {other:?}"),
    };
    let seed = Seed::new(WindowType::BranchMispredict, 1);
    let plan = gen::plan(&seed);
    let mut schedule = gen::derive_trainings(&seed, &plan, 1);
    schedule.push(gen::build_transient(&plan, &WindowFill::Dummy));

    // The knob stays set through the first run: the respawn-retry's
    // fresh worker inherits it too and corrupts *its* first reply, so
    // both attempts fail and the error surfaces.
    let corrupt = EnvKnob::set(CORRUPT_AFTER_ENV, 1);
    let mut backend = ProcBackend::spawn(&proc_spec).expect("spawn pool");
    let err = backend
        .run(&plan, &schedule, IftMode::DiffIft, 4096)
        .expect_err("the corrupted first reply must fail the run");
    drop(corrupt);
    match &err {
        BackendError::Worker { detail } => assert!(
            detail.contains("checksum") || detail.contains("frame") || detail.contains("magic"),
            "diagnosis names the malformed frame: {detail}"
        ),
        other => panic!("expected a Worker error, got {other:?}"),
    }
    assert!(
        backend.shared().respawns() >= 1,
        "the pool tried a fresh worker"
    );
    // The corrupting incarnations are gone; the pool serves again.
    backend
        .run(&plan, &schedule, IftMode::DiffIft, 4096)
        .expect("a clean respawned worker serves the next run");
}

/// The snapshot echo carries the pool geometry, and resuming under a
/// different backend label is refused — pool geometry is part of the
/// campaign identity a snapshot pins.
#[test]
fn snapshots_echo_pool_geometry() {
    let _guard = env_lock();
    let orch = CampaignBuilder::new()
        .backend(spec("proc:netlist:small:2"))
        .workers(2)
        .seed(3)
        .build()
        .expect("a valid campaign configuration");
    let mut observers: Vec<Box<dyn dejavuzz::observer::CampaignObserver>> = Vec::new();
    let (_, snapshot) = orch.run_observed(4, &mut observers);
    assert_eq!(snapshot.backend, "proc:netlist:small:2");
}
