//! Observer-stream determinism: the acceptance properties of the
//! `CampaignObserver` event stream.
//!
//! * For a fixed `(seed, workers, scheduler)` the full event sequence —
//!   kinds *and* payloads — is identical run over run, for every worker
//!   count 1–4 and both built-in schedulers (thread timing must never
//!   leak into events).
//! * Across a halt/resume boundary the streams concatenate: the halted
//!   run's events followed by the resumed run's events are exactly the
//!   uninterrupted run's events (`campaign_finished` aside, which fires
//!   once per run by design).
//! * The JSON-lines telemetry rendering is byte-deterministic and every
//!   line is well-formed JSON.

use std::sync::{Arc, Mutex};

use dejavuzz::backend::BackendSpec;
use dejavuzz::builder::CampaignBuilder;
use dejavuzz::observer::{
    BugFound, CampaignFinished, CampaignObserver, CoverageGained, JsonLinesObserver, RoundStarted,
    SlotCommitted, SnapshotWritten,
};
use dejavuzz::scheduler::SchedulerSpec;
use dejavuzz_ift::CoveragePoint;
use dejavuzz_uarch::boom_small;

/// An owned mirror of every event payload (borrowed payloads copied
/// out), so whole streams compare with `==`. Wall-clock is excluded on
/// purpose: `CampaignFinished::elapsed` is the one nondeterministic
/// field of the stream.
#[derive(Clone, Debug, PartialEq)]
enum Event {
    Round(RoundStarted),
    Slot(SlotCommitted),
    Coverage {
        slot: usize,
        points: Vec<CoveragePoint>,
        total_points: usize,
    },
    Bug(BugFound),
    Snapshot {
        iterations: usize,
        periodic: bool,
    },
    Finished {
        iterations: usize,
        coverage: usize,
        bugs: usize,
        corpus_retained: usize,
        corpus_evicted: usize,
    },
}

/// Records the stream through a shared handle (the observer box moves
/// into the run; the handle stays with the test).
#[derive(Clone, Default)]
struct Recorder(Arc<Mutex<Vec<Event>>>);

impl Recorder {
    fn events(&self) -> Vec<Event> {
        self.0.lock().unwrap().clone()
    }
}

impl CampaignObserver for Recorder {
    fn round_started(&mut self, ev: &RoundStarted) {
        self.0.lock().unwrap().push(Event::Round(*ev));
    }
    fn slot_committed(&mut self, ev: &SlotCommitted) {
        self.0.lock().unwrap().push(Event::Slot(ev.clone()));
    }
    fn coverage_gained(&mut self, ev: &CoverageGained<'_>) {
        self.0.lock().unwrap().push(Event::Coverage {
            slot: ev.slot,
            points: ev.points.to_vec(),
            total_points: ev.total_points,
        });
    }
    fn bug_found(&mut self, ev: &BugFound) {
        self.0.lock().unwrap().push(Event::Bug(ev.clone()));
    }
    fn snapshot_written(&mut self, ev: &SnapshotWritten<'_>) {
        self.0.lock().unwrap().push(Event::Snapshot {
            iterations: ev.iterations,
            periodic: ev.periodic,
        });
    }
    fn campaign_finished(&mut self, ev: &CampaignFinished<'_>) {
        self.0.lock().unwrap().push(Event::Finished {
            iterations: ev.report.stats.iterations,
            coverage: ev.report.stats.coverage(),
            bugs: ev.report.stats.bugs.len(),
            corpus_retained: ev.report.corpus_retained,
            corpus_evicted: ev.report.corpus_evicted,
        });
    }
}

fn campaign(workers: usize, seed: u64, scheduler: SchedulerSpec) -> CampaignBuilder {
    CampaignBuilder::new()
        .backend(BackendSpec::behavioural(boom_small()))
        .workers(workers)
        .seed(seed)
        .scheduler(scheduler)
}

fn record(builder: CampaignBuilder, iterations: usize) -> Vec<Event> {
    let recorder = Recorder::default();
    let mut observers: Vec<Box<dyn CampaignObserver>> = vec![Box::new(recorder.clone())];
    builder
        .build()
        .unwrap()
        .run_observed(iterations, &mut observers);
    recorder.events()
}

/// The headline property: the full event sequence (kinds + payloads) is
/// identical across repeated runs for worker counts 1–4 under both
/// built-in schedulers — events fire on the orchestrator's deterministic
/// commit path, so claim racing and thread timing cannot reach them.
#[test]
fn event_stream_is_deterministic_per_seed_and_workers() {
    for scheduler in [SchedulerSpec::RoundRobin, SchedulerSpec::WorkStealing] {
        for workers in 1..=4 {
            let a = record(campaign(workers, 0x0B5E, scheduler.clone()), 16);
            let b = record(campaign(workers, 0x0B5E, scheduler.clone()), 16);
            assert_eq!(
                a, b,
                "{scheduler:?} x {workers} workers: streams must be identical"
            );
            assert!(
                a.iter().any(|e| matches!(e, Event::Slot(_))),
                "slots were committed"
            );
            assert!(
                a.iter().any(|e| matches!(e, Event::Coverage { .. })),
                "coverage was gained"
            );
            assert!(
                matches!(a.last(), Some(Event::Finished { .. })),
                "the stream ends with campaign_finished"
            );
        }
    }
}

/// Same seed, different worker counts: the streams must *differ* (the
/// pool geometry is part of the replay identity) — determinism is per
/// `(seed, workers)`, not magic seed-only reproducibility.
#[test]
fn event_stream_depends_on_worker_count() {
    let one = record(campaign(1, 0x0B5E, SchedulerSpec::RoundRobin), 16);
    let four = record(campaign(4, 0x0B5E, SchedulerSpec::RoundRobin), 16);
    assert_ne!(one, four);
}

/// Halt/resume: the halted stream plus the resumed stream equals the
/// uninterrupted stream (minus the per-run `campaign_finished`), and the
/// resumed run's final event equals the uninterrupted one's — for both
/// schedulers, through the on-disk wire format.
#[test]
fn event_stream_concatenates_across_a_halt_resume_boundary() {
    const TOTAL: usize = 24;
    let not_finished = |e: &Event| !matches!(e, Event::Finished { .. });
    for scheduler in [SchedulerSpec::RoundRobin, SchedulerSpec::WorkStealing] {
        let base = campaign(2, 0xCAFE, scheduler.clone());
        let full = record(base.clone(), TOTAL);

        let halted_rec = Recorder::default();
        let mut observers: Vec<Box<dyn CampaignObserver>> = vec![Box::new(halted_rec.clone())];
        let (partial, snap) = base
            .clone()
            .halt_after(9)
            .build()
            .unwrap()
            .run_observed(TOTAL, &mut observers);
        assert!(partial.stats.iterations < TOTAL, "the halt must interrupt");
        let snap = dejavuzz::snapshot::CampaignSnapshot::from_bytes(&snap.to_bytes()).unwrap();

        let resumed_rec = Recorder::default();
        let mut observers: Vec<Box<dyn CampaignObserver>> = vec![Box::new(resumed_rec.clone())];
        base.resume(snap)
            .build()
            .unwrap()
            .run_observed(TOTAL, &mut observers);

        let mut spliced: Vec<Event> = halted_rec
            .events()
            .into_iter()
            .filter(not_finished)
            .collect();
        spliced.extend(
            resumed_rec
                .events()
                .iter()
                .filter(|e| not_finished(e))
                .cloned(),
        );
        let full_body: Vec<Event> = full.iter().filter(|e| not_finished(e)).cloned().collect();
        assert_eq!(
            spliced, full_body,
            "{scheduler:?}: halted + resumed events splice into the uninterrupted stream"
        );
        assert_eq!(
            resumed_rec.events().last(),
            full.last(),
            "{scheduler:?}: the resumed finale equals the uninterrupted one"
        );
    }
}

/// A permissive-enough JSON well-formedness check (no serde in the build
/// environment): balanced braces/brackets outside strings, valid string
/// escapes, non-empty.
fn assert_wellformed_json(line: &str) {
    let mut depth: i64 = 0;
    let mut in_string = false;
    let mut escaped = false;
    assert!(line.starts_with('{'), "not an object: {line}");
    for c in line.chars() {
        if in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' | '[' => depth += 1,
            '}' | ']' => depth -= 1,
            _ => {}
        }
        assert!(depth >= 0, "unbalanced close in {line}");
    }
    assert!(!in_string, "unterminated string in {line}");
    assert_eq!(depth, 0, "unbalanced braces in {line}");
}

/// The `--telemetry json` contract: one JSON object per line, every line
/// well-formed, and the rendered bytes deterministic per
/// `(seed, workers)`.
#[test]
fn json_lines_telemetry_is_wellformed_and_byte_deterministic() {
    // The observer owns its sink, so capture bytes through a shared Vec.
    #[derive(Clone, Default)]
    struct Shared(Arc<Mutex<Vec<u8>>>);
    impl std::io::Write for Shared {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }
    let capture = || {
        let shared = Shared::default();
        let mut observers: Vec<Box<dyn CampaignObserver>> =
            vec![Box::new(JsonLinesObserver::new(shared.clone()))];
        campaign(2, 7, SchedulerSpec::WorkStealing)
            .build()
            .unwrap()
            .run_observed(12, &mut observers);
        let bytes = shared.0.lock().unwrap().clone();
        String::from_utf8(bytes).expect("telemetry is UTF-8")
    };
    let a = capture();
    let b = capture();
    assert_eq!(a, b, "telemetry bytes are deterministic");
    assert!(!a.is_empty());
    let mut kinds = std::collections::BTreeSet::new();
    for line in a.lines() {
        assert_wellformed_json(line);
        let kind = line
            .strip_prefix("{\"event\":\"")
            .and_then(|r| r.split('"').next())
            .expect("every line leads with its event kind");
        kinds.insert(kind.to_string());
    }
    for expected in [
        "round_started",
        "slot_committed",
        "coverage_gained",
        "campaign_finished",
    ] {
        assert!(kinds.contains(expected), "missing {expected} in {kinds:?}");
    }
    assert!(
        a.lines()
            .last()
            .unwrap()
            .starts_with("{\"event\":\"campaign_finished\""),
        "the stream ends with the finale"
    );
}
