//! A minimal, deterministic stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so the subset the
//! workspace's property tests use is vendored here: the [`proptest!`]
//! macro (with the optional `#![proptest_config(..)]` header), range and
//! tuple strategies, [`any`], `prop_map`, and the `prop_assert*` macros.
//!
//! Unlike upstream proptest there is no shrinking and no persisted failure
//! file: each test runs `ProptestConfig::cases` deterministic cases whose
//! RNG stream is derived from the test name and case index, so a failure
//! reproduces exactly on re-run.

use std::marker::PhantomData;

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform, SeedableRng};

/// Per-test configuration (only the case count is honoured).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the heavier simulator-backed
        // properties fast while still exercising the value space.
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values (upstream's `Strategy`, minus shrinking).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// One random value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

impl<T: SampleUniform> Strategy for std::ops::Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident/$i:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A / 0, B / 1);
impl_tuple_strategy!(A / 0, B / 1, C / 2);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);

/// Types with a full-range generator (upstream's `Arbitrary`).
pub trait Arbitrary {
    /// One uniformly random value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

impl_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen()
    }
}

/// The [`any`] strategy.
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// A full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Derives the deterministic RNG of one (test, case) pair.
#[doc(hidden)]
pub fn __seed_rng(test_name: &str, case: u32) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h.wrapping_add(case as u64))
}

/// The property-test macro: defines each `fn name(args in strategies)` as
/// a plain `#[test]` running the body over deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::__seed_rng(stringify!($name), __case);
                    $( let $arg = $crate::Strategy::generate(&($strat), &mut __rng); )*
                    $body
                }
            }
        )*
    };
}

/// `assert!` under proptest's spelling (no shrinking to drive, so the
/// plain panic is the whole story).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` under proptest's spelling.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` under proptest's spelling.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Any, Arbitrary, Map,
        ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 0u32..64, y in -8i64..8) {
            prop_assert!(x < 64);
            prop_assert!((-8..8).contains(&y));
        }

        #[test]
        fn tuples_and_map(v in (any::<u64>(), 0u8..4).prop_map(|(a, b)| a ^ b as u64)) {
            let _ = v;
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn config_form_parses(x in any::<u8>()) {
            let _ = x;
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a: Vec<u64> = (0..4)
            .map(|c| crate::Strategy::generate(&(0u64..1000), &mut crate::__seed_rng("t", c)))
            .collect();
        let b: Vec<u64> = (0..4)
            .map(|c| crate::Strategy::generate(&(0u64..1000), &mut crate::__seed_rng("t", c)))
            .collect();
        assert_eq!(a, b);
    }
}
