//! A minimal, deterministic stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the subset of the
//! `rand 0.8` API the workspace uses is vendored here: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] sampling methods
//! (`gen`, `gen_range`, `gen_bool`).
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a different
//! stream than upstream `StdRng` (ChaCha12), but the workspace only relies
//! on *determinism per seed*, never on a specific stream. Range sampling
//! uses simple modulo reduction; the bias is negligible for the small
//! spans used by the stimulus generators and keeps the sampler branch-free
//! and reproducible.

pub mod rngs {
    /// A deterministic 64-bit PRNG (xoshiro256++).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn from_state(mut seed: u64) -> Self {
            // SplitMix64 expansion, as the xoshiro authors recommend.
            let mut next = || {
                seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = seed;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }

        /// The raw 256-bit xoshiro state — the generator's exact stream
        /// position, captured for campaign snapshots. Restoring it with
        /// [`StdRng::from_raw_state`] resumes the stream bit-identically.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator at a previously captured [`StdRng::state`]
        /// position. The all-zero state is a fixed point of xoshiro (it
        /// would emit zeros forever), so it is remapped to the seed-0
        /// expansion; every state captured from a live generator is
        /// non-zero and restores exactly.
        pub fn from_raw_state(s: [u64; 4]) -> Self {
            if s == [0; 4] {
                Self::from_state(0)
            } else {
                StdRng { s }
            }
        }

        pub(crate) fn next(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Core entropy source.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl RngCore for rngs::StdRng {
    fn next_u64(&mut self) -> u64 {
        self.next()
    }
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a single `u64` seed.
    fn seed_from_u64(state: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(state: u64) -> Self {
        rngs::StdRng::from_state(state)
    }
}

/// Types samplable uniformly from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Samples from `[low, high)`; `high` must be strictly greater.
    fn sample_range(rng: &mut dyn FnMut() -> u64, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_unsigned {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(rng: &mut dyn FnMut() -> u64, low: Self, high: Self) -> Self {
                let span = (high - low) as u64;
                low + (rng() % span) as $t
            }
        }
    )*};
}

macro_rules! impl_sample_signed {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(rng: &mut dyn FnMut() -> u64, low: Self, high: Self) -> Self {
                let span = (high as i128 - low as i128) as u64;
                (low as i128 + (rng() % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_unsigned!(u8, u16, u32, u64, usize);
impl_sample_signed!(i8, i16, i32, i64, isize);

/// Types samplable from the generator's full output (`Rng::gen`).
pub trait Standard {
    /// One uniformly random value.
    fn sample(rng: &mut dyn FnMut() -> u64) -> Self;
}

impl Standard for u64 {
    fn sample(rng: &mut dyn FnMut() -> u64) -> Self {
        rng()
    }
}

impl Standard for u32 {
    fn sample(rng: &mut dyn FnMut() -> u64) -> Self {
        rng() as u32
    }
}

impl Standard for u8 {
    fn sample(rng: &mut dyn FnMut() -> u64) -> Self {
        rng() as u8
    }
}

impl Standard for bool {
    fn sample(rng: &mut dyn FnMut() -> u64) -> Self {
        rng() & 1 == 1
    }
}

/// The sampling interface, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(&mut || self.next_u64())
    }

    /// A uniform sample from the half-open `range`.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        assert!(range.start < range.end, "gen_range called with empty range");
        T::sample_range(&mut || self.next_u64(), range.start, range.end)
    }

    /// A Bernoulli draw with probability `p` (53-bit resolution).
    fn gen_bool(&mut self, p: f64) -> bool {
        ((self.next_u64() >> 11) as f64) / ((1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn state_capture_and_restore_resume_the_stream_exactly() {
        let mut r = StdRng::seed_from_u64(99);
        for _ in 0..37 {
            r.next_u64();
        }
        let state = r.state();
        let mut resumed = StdRng::from_raw_state(state);
        for _ in 0..100 {
            assert_eq!(r.next_u64(), resumed.next_u64());
        }
    }

    #[test]
    fn all_zero_state_is_remapped_not_degenerate() {
        let mut r = StdRng::from_raw_state([0; 4]);
        assert_ne!(r.next_u64(), r.next_u64(), "must not emit zeros forever");
        assert_eq!(StdRng::from_raw_state([0; 4]), StdRng::seed_from_u64(0));
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: i64 = r.gen_range(-512..512);
            assert!((-512..512).contains(&v));
            let u: usize = r.gen_range(8..16);
            assert!((8..16).contains(&u));
        }
    }

    #[test]
    fn gen_bool_is_calibrated() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_500..5_500).contains(&hits), "{hits}");
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn all_range_types_sample() {
        let mut r = StdRng::seed_from_u64(3);
        let _: u8 = r.gen_range(0..32);
        let _: i32 = r.gen_range(-4..4);
        let _: u64 = r.gen_range(0..1 << 40);
        let _: bool = r.gen();
        let _: u64 = r.gen();
    }
}
