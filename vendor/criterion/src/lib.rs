//! A minimal stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so the subset the
//! workspace's benches use is vendored here: [`Criterion`],
//! `benchmark_group`, `bench_function`, [`Bencher::iter`], the
//! [`criterion_group!`]/[`criterion_main!`] macros and [`black_box`].
//!
//! Measurement is a plain warm-up plus `sample_size` timed samples; it
//! reports min/mean/max wall-clock per iteration. No statistics, HTML
//! reports or regression baselines — just comparable numbers.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 30 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(name, self.sample_size, f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A named group; prefixes its benchmarks' labels.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets this group's sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, name), self.sample_size, f);
        self
    }

    /// Ends the group (upstream flushes reports here; we have none).
    pub fn finish(self) {}
}

/// Passed to the closure of `bench_function`; times the hot loop.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    warmed: bool,
}

impl Bencher {
    /// Times `f`, recording one sample per configured batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if !self.warmed {
            // One untimed call per *benchmark* (fills caches, faults
            // pages); the Bencher persists across samples, so later
            // samples go straight to the timed loop.
            black_box(f());
            self.warmed = true;
        }
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(f());
        }
        self.samples
            .push(start.elapsed() / self.iters_per_sample as u32);
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        samples: Vec::new(),
        iters_per_sample: 1,
        warmed: false,
    };
    for _ in 0..sample_size {
        f(&mut b);
    }
    if b.samples.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    let min = b.samples.iter().min().unwrap();
    let max = b.samples.iter().max().unwrap();
    let mean = b.samples.iter().sum::<Duration>() / b.samples.len() as u32;
    println!(
        "{name:<40} time: [{} {} {}]",
        fmt_duration(*min),
        fmt_duration(mean),
        fmt_duration(*max)
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Declares a benchmark group function, mirroring criterion's two forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench harness entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        c.bench_function("trivial", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("group");
        g.bench_function("inner", |b| b.iter(|| black_box(2 * 2)));
        g.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = trivial
    }

    #[test]
    fn harness_runs() {
        benches();
    }
}
