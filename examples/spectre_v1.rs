//! Runs the hand-written Spectre-V1 scenario (paper Figure 1/Figure 4) on
//! the differential testbench and walks through what each analysis layer
//! sees: the RoB trace, the taint log, and the final sink sweep.
//!
//! ```sh
//! cargo run --release --example spectre_v1
//! ```

use dejavuzz_ift::IftMode;
use dejavuzz_uarch::core::Core;
use dejavuzz_uarch::{attacks, boom_small};

fn main() {
    let case = attacks::spectre_v1();
    println!("scenario: {}", case.name);
    println!("swap schedule:");
    for (i, p) in case.packets.iter().enumerate() {
        println!(
            "  [{i}] {:<22} ({:?}, {} instrs)",
            p.name,
            p.kind,
            p.instr_count()
        );
    }

    let mut mem = case.build_mem(&[0x2A]);
    let result = Core::new(boom_small(), IftMode::DiffIft).run(&mut mem, 10_000);

    let window = result.window().expect("the trained branch must mispredict");
    println!("\ntransient window (packet {}):", window.packet);
    println!("  cause:     {}", window.cause);
    println!("  enqueued:  {}", window.enqueued);
    println!("  committed: {}", window.committed);
    println!("  squashed:  {}", window.squashed);
    println!(
        "  cycles:    variant1 {} / variant2 {}",
        window.cycles_a, window.cycles_b
    );

    println!("\npeak taint sum: {}", result.taint_log.peak_taint());
    println!("tainted sinks (liveness-annotated):");
    for s in &result.sinks {
        println!(
            "  {:<8} {:<12} slot {:>3}  {}",
            s.module,
            s.array,
            s.index,
            if s.exploitable() {
                "EXPLOITABLE"
            } else {
                "residue (dead)"
            }
        );
    }
    let exploitable = result.exploitable_sinks();
    println!(
        "\n=> {} exploitable sink(s): the secret-indexed leak-array line is live in \
         the data cache — the classic Spectre-V1 leak.",
        exploitable.len()
    );
}
