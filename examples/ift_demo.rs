//! The Figure 2 demonstration: the BOOM RoB-entry circuit, instrumented
//! with CellIFT and diffIFT shadow logic, driven through the §2.2 rollback
//! scenario that makes CellIFT's control taints explode.
//!
//! ```sh
//! cargo run --release --example ift_demo
//! ```

use dejavuzz_ift::{IftMode, TWord};
use dejavuzz_rtl::examples::rob_entry_circuit;
use dejavuzz_rtl::NetlistSim;

fn run_rollback(mode: IftMode) -> usize {
    let circuit = rob_entry_circuit(16);
    let mut sim = NetlistSim::new(circuit.netlist.clone(), mode);
    // Cycle 1: an instruction carrying a secret writes back into entry 1.
    sim.set_input(circuit.in_enq_uopc, TWord::secret(0x13, 0x37));
    sim.set_input(circuit.in_enq_valid, TWord::lit(1));
    sim.set_input(circuit.in_rob_tail_idx, TWord::lit(1));
    sim.step();
    // Cycle 2: the RoB rolls back. The tail pointer and enq_valid are now
    // tainted, but their *values* are identical in both DUT variants.
    sim.set_input(circuit.in_enq_uopc, TWord::lit(0x55));
    sim.set_input(circuit.in_enq_valid, TWord::with_taint(1, 1, 1));
    sim.set_input(circuit.in_rob_tail_idx, TWord::with_taint(2, 2, u64::MAX));
    sim.step();
    sim.census().taint_sum()
}

fn main() {
    println!("Figure 2 / §2.2: the RoB rollback taint explosion (16-entry RoB)\n");
    let cell = run_rollback(IftMode::CellIft);
    let diff = run_rollback(IftMode::DiffIft);
    println!("CellIFT: {cell}/16 rob_*_uopc registers tainted after the rollback");
    println!("diffIFT: {diff}/16 rob_*_uopc registers tainted after the rollback");
    println!(
        "\nCellIFT's Policy 2 fires on any tainted selection signal; diffIFT's \
         cross-instance gate sees that no secret could have selected a different \
         path (both variants roll back identically) and keeps the entries clean."
    );
}
