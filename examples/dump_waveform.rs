//! Exports a Spectre-V1 run's taint activity as a VCD waveform — the
//! artifact §7 says developers use to pinpoint bugs.
//!
//! ```sh
//! cargo run --release --example dump_waveform > spectre_v1.vcd
//! ```

use dejavuzz_ift::IftMode;
use dejavuzz_uarch::core::Core;
use dejavuzz_uarch::{attacks, boom_small, waveform};

fn main() {
    let case = attacks::spectre_v1();
    let mut mem = case.build_mem(&[0x2A]);
    let r = Core::new(boom_small(), IftMode::DiffIft).run(&mut mem, 10_000);
    print!(
        "{}",
        waveform::to_vcd(&r.taint_log, &r.trace, "boom_spectre_v1")
    );
    eprintln!(
        "# {} cycles, peak taint {}, window: {:?}",
        r.total_cycles.0,
        r.taint_log.peak_taint(),
        r.window().map(|w| (w.start_cycle, w.end_cycle))
    );
}
