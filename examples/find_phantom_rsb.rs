//! Detects the paper's B2 Phantom-RSB bug (CVE-2024-44591) on the
//! BOOM-like core and shows that the XiangShan-like core (full RAS
//! checkpointing) is immune.
//!
//! ```sh
//! cargo run --release --example find_phantom_rsb
//! ```

use dejavuzz_ift::IftMode;
use dejavuzz_uarch::core::Core;
use dejavuzz_uarch::{attacks, boom_small, xiangshan_minimal};

fn main() {
    let case = attacks::phantom_rsb();
    println!("scenario: {}\n", case.name);

    for cfg in [boom_small(), xiangshan_minimal()] {
        let mut mem = case.build_mem(&[0x2A]);
        let r = Core::new(cfg, IftMode::DiffIft).run(&mut mem, 10_000);
        let ras_leaks: Vec<_> = r
            .sinks
            .iter()
            .filter(|s| s.module == "ras" && s.exploitable())
            .collect();
        println!("{}:", cfg.name);
        match ras_leaks.first() {
            Some(s) => println!(
                "  VULNERABLE — RAS slot {} below TOS holds a live, secret-dependent \
                 return address (squash recovery restored only TOS + the top entry)",
                s.index
            ),
            None => println!("  not vulnerable — full RAS checkpointing restored every entry"),
        }
    }
    println!(
        "\nThe paper's fix status: \"all vulnerabilities in XiangShan have been fixed, \
         while bugs in BOOM will be retained for future research.\""
    );
}
