//! B1 MeltDown-Sampling (CVE-2024-44594): the generator's address mask is
//! silently truncated by the XiangShan load unit's narrower physical
//! address wire, sampling the aliased (protected) target.
//!
//! ```sh
//! cargo run --release --example meltdown_sampling
//! ```

use dejavuzz_ift::IftMode;
use dejavuzz_uarch::core::Core;
use dejavuzz_uarch::{attacks, boom_small, xiangshan_minimal};

fn main() {
    let case = attacks::meltdown_sampling();
    println!("scenario: {}\n", case.name);
    println!(
        "The transient packet computes  t0 = &secret | (1 << 63)  — an illegal\n\
         address. On XiangShan the pipeline's 64-bit wire feeds a {}-bit load-unit\n\
         wire, so the mask truncates away and the load samples the secret while\n\
         the access fault is still in flight.\n",
        xiangshan_minimal().paddr_bits
    );
    for cfg in [xiangshan_minimal(), boom_small()] {
        let mut mem = case.build_mem(&[0x2A]);
        let r = Core::new(cfg, IftMode::DiffIft).run(&mut mem, 10_000);
        let leaked = r
            .sinks
            .iter()
            .any(|s| s.module == "dcache" && s.exploitable());
        println!(
            "{:<10} (paddr {} bits): {}",
            cfg.name,
            cfg.paddr_bits,
            if leaked {
                "VULNERABLE — secret-indexed leak line live in the dcache"
            } else {
                "not vulnerable — the illegal address is blocked outright"
            }
        );
    }
}
