//! Quickstart: fuzz the BOOM-like core for a handful of iterations and
//! print what DejaVuzz finds.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dejavuzz::campaign::{Campaign, FuzzerOptions};
use dejavuzz_uarch::boom_small;

fn main() {
    let iterations = 40;
    println!("DejaVuzz quickstart: {iterations} iterations on {}\n", boom_small().name);

    let mut campaign = Campaign::new(boom_small(), FuzzerOptions::default(), 0xC0FFEE);
    let stats = campaign.run(iterations);

    println!("iterations:      {}", stats.iterations);
    println!("simulations:     {}", stats.sim_runs);
    println!("coverage points: {}", stats.coverage());
    println!("first bug at:    {:?}", stats.first_bug_iteration);
    println!("\ntriggered transient windows (TO = training overhead, ETO = effective):");
    for (wt, ws) in &stats.windows {
        if ws.triggered > 0 {
            println!(
                "  {:<28} {:>2}/{:<2}  TO {:>6.1}  ETO {:>5.1}",
                wt.name(),
                ws.triggered,
                ws.attempted,
                ws.mean_to(),
                ws.mean_eto()
            );
        }
    }
    println!("\nreported leaks:");
    for bug in &stats.bugs {
        println!("  {bug}");
    }
    if stats.bugs.is_empty() {
        println!("  (none in this short run — try more iterations)");
    }
}
