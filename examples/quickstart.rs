//! Quickstart: fuzz the BOOM-like core on the shared-corpus pipeline
//! executor through the embedding API — `CampaignBuilder` to configure,
//! a custom `CampaignObserver` to stream progress — and print what
//! DejaVuzz finds.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dejavuzz::builder::CampaignBuilder;
use dejavuzz::observer::{BugFound, CampaignObserver, CoverageGained};
use dejavuzz_uarch::boom_small;

/// A minimal embedder-side observer: tally coverage jumps and print bug
/// reports the moment they commit (no stdout scraping required).
#[derive(Default)]
struct Progress {
    coverage_events: usize,
}

impl CampaignObserver for Progress {
    fn coverage_gained(&mut self, ev: &CoverageGained<'_>) {
        self.coverage_events += 1;
        if self.coverage_events <= 3 {
            println!(
                "  [slot {:>2}] +{} coverage points (total {})",
                ev.slot,
                ev.points.len(),
                ev.total_points
            );
        }
    }

    fn bug_found(&mut self, ev: &BugFound) {
        println!("  [slot {:>2}] BUG {}", ev.slot, ev.bug);
    }
}

fn main() {
    let iterations = 40;
    let workers = 2;
    println!(
        "DejaVuzz quickstart: {iterations} iterations on {}, {workers} workers, shared corpus\n",
        boom_small().name
    );

    // The builder validates the whole configuration up front; defaults
    // are the behavioural SmallBOOM backend and round-robin scheduling.
    let orch = CampaignBuilder::new()
        .workers(workers)
        .seed(0xC0FFEE)
        .build()
        .expect("a valid campaign configuration");
    let mut observers: Vec<Box<dyn CampaignObserver>> = vec![Box::new(Progress::default())];
    let (report, _snapshot) = orch.run_observed(iterations, &mut observers);
    let stats = &report.stats;

    println!("\niterations:      {}", stats.iterations);
    println!("simulations:     {}", stats.sim_runs);
    println!(
        "coverage points: {} (exact union across workers)",
        stats.coverage()
    );
    println!("corpus retained: {}", report.corpus_retained);
    println!("first bug at:    {:?}", stats.first_bug_iteration);
    for w in &report.workers {
        println!(
            "worker #{}:       {} iterations, {} points observed",
            w.worker,
            w.iterations,
            w.observed.points()
        );
    }
    println!("\ntriggered transient windows (TO = training overhead, ETO = effective):");
    for (wt, ws) in &stats.windows {
        if ws.triggered > 0 {
            println!(
                "  {:<28} {:>2}/{:<2}  TO {:>6.1}  ETO {:>5.1}",
                wt.name(),
                ws.triggered,
                ws.attempted,
                ws.mean_to(),
                ws.mean_eto()
            );
        }
    }
    println!("\nreported leaks:");
    for bug in &stats.bugs {
        println!("  {bug}");
    }
    if stats.bugs.is_empty() {
        println!("  (none in this short run — try more iterations)");
    }

    // The same pipeline over a different system under test: swap the
    // simulation backend, keep everything else (see `dejavuzz::backend`).
    let netlist = CampaignBuilder::new()
        .backend(dejavuzz::BackendSpec::netlist(
            dejavuzz_rtl::examples::SMALL_SCALE,
        ))
        .workers(workers)
        .seed(0xC0FFEE)
        .build()
        .expect("a valid netlist campaign")
        .run(iterations);
    println!(
        "\nsame campaign on the netlist backend (netlist:SynthSmall): \
         {} coverage points, {} bug(s)",
        netlist.stats.coverage(),
        netlist.stats.bugs.len()
    );
}
