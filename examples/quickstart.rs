//! Quickstart: fuzz the BOOM-like core for a handful of iterations on
//! the shared-corpus pipeline executor and print what DejaVuzz finds.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dejavuzz::campaign::FuzzerOptions;
use dejavuzz::executor;
use dejavuzz_uarch::boom_small;

fn main() {
    let iterations = 40;
    let workers = 2;
    println!(
        "DejaVuzz quickstart: {iterations} iterations on {}, {workers} workers, shared corpus\n",
        boom_small().name
    );

    let report = executor::run(
        boom_small(),
        FuzzerOptions::default(),
        workers,
        iterations,
        0xC0FFEE,
    );
    let stats = &report.stats;

    println!("iterations:      {}", stats.iterations);
    println!("simulations:     {}", stats.sim_runs);
    println!(
        "coverage points: {} (exact union across workers)",
        stats.coverage()
    );
    println!("corpus retained: {}", report.corpus_retained);
    println!("first bug at:    {:?}", stats.first_bug_iteration);
    for w in &report.workers {
        println!(
            "worker #{}:       {} iterations, {} points observed",
            w.worker,
            w.iterations,
            w.observed.points()
        );
    }
    println!("\ntriggered transient windows (TO = training overhead, ETO = effective):");
    for (wt, ws) in &stats.windows {
        if ws.triggered > 0 {
            println!(
                "  {:<28} {:>2}/{:<2}  TO {:>6.1}  ETO {:>5.1}",
                wt.name(),
                ws.triggered,
                ws.attempted,
                ws.mean_to(),
                ws.mean_eto()
            );
        }
    }
    println!("\nreported leaks:");
    for bug in &stats.bugs {
        println!("  {bug}");
    }
    if stats.bugs.is_empty() {
        println!("  (none in this short run — try more iterations)");
    }

    // The same pipeline over a different system under test: swap the
    // simulation backend, keep everything else (see `dejavuzz::backend`).
    let netlist = executor::run_with_backend(
        dejavuzz::BackendSpec::netlist(dejavuzz_rtl::examples::SMALL_SCALE),
        FuzzerOptions::default(),
        workers,
        iterations,
        0xC0FFEE,
    );
    println!(
        "\nsame campaign on the netlist backend (netlist:SynthSmall): \
         {} coverage points, {} bug(s)",
        netlist.stats.coverage(),
        netlist.stats.bugs.len()
    );
}
