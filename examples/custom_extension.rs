//! Custom extensions end to end: a user-supplied `Scheduler`,
//! `SeedPolicy` *and* `SimBackend` plugged into the campaign through the
//! extension registry, snapshotted mid-run, and resumed bit-identically
//! — the round trip that closed persistence to custom implementations
//! before snapshot v3.
//!
//! ```sh
//! cargo run --release --example custom_extension -- --mode full   > a.txt
//! cargo run --release --example custom_extension -- --mode resume > b.txt
//! diff a.txt b.txt   # identical: the resumed custom campaign replays exactly
//! ```
//!
//! Both modes print the same campaign digest: `full` runs 24 iterations
//! uninterrupted; `resume` halts after 9, writes a snapshot file, loads
//! it back in a *fresh* builder (re-registering the extension ids, as a
//! restarted process would), and finishes the run. The stateful custom
//! scheduler makes this a real test — if its round counter were not
//! persisted and restored, the resumed half would plan different round
//! spans and the digests would diverge.

use dejavuzz::backend::BehaviouralBackend;
use dejavuzz::builder::CampaignBuilder;
use dejavuzz::corpus::Corpus;
use dejavuzz::executor::ExecutorReport;
use dejavuzz::rand::rngs::StdRng;
use dejavuzz::scheduler::{
    PlanCtx, PolicyState, RoundPlan, RoundRobin, Scheduler, SeedPolicy, SlotFeedback,
};
use dejavuzz::Seed;
use dejavuzz_uarch::boom_small;
use std::ops::Range;

/// A custom scheduler with *state that matters*: even-numbered rounds
/// span the full `workers x batch` slots, odd-numbered rounds span a
/// single batch. The round counter is the campaign-replay-critical state
/// the snapshot must carry — [`Scheduler::state`] persists it,
/// the registered constructor restores it.
#[derive(Debug, Default)]
struct PulseScheduler {
    rounds: u64,
}

impl PulseScheduler {
    fn from_state(state: Option<&[u8]>) -> Self {
        let rounds = state
            .and_then(|b| <[u8; 8]>::try_from(b).ok())
            .map(u64::from_le_bytes)
            .unwrap_or(0);
        PulseScheduler { rounds }
    }
}

impl Scheduler for PulseScheduler {
    fn name(&self) -> &'static str {
        "pulse"
    }

    fn round_span(&self, workers: usize, batch: usize, remaining: usize) -> usize {
        let span = if self.rounds.is_multiple_of(2) {
            workers * batch
        } else {
            batch
        };
        remaining.min(span.max(1))
    }

    fn plan_round(&mut self, slots: Range<usize>, ctx: &mut PlanCtx<'_>) -> RoundPlan {
        self.rounds += 1;
        // The slot distribution itself is the classic round robin; only
        // the pulse-shaped span is custom.
        RoundRobin.plan_round(slots, ctx)
    }

    fn state(&self) -> Vec<u8> {
        self.rounds.to_le_bytes().to_vec()
    }
}

/// A custom seed policy, also stateful: every third pick greedily
/// reschedules the highest-energy corpus entry (no roulette), everything
/// else explores fresh. The call counter persists as an opaque blob
/// ([`PolicyState::Opaque`]).
#[derive(Debug, Default)]
struct GreedyThirds {
    calls: u64,
}

impl GreedyThirds {
    fn from_state(state: Option<&[u8]>) -> Self {
        let calls = state
            .and_then(|b| <[u8; 8]>::try_from(b).ok())
            .map(u64::from_le_bytes)
            .unwrap_or(0);
        GreedyThirds { calls }
    }
}

impl SeedPolicy for GreedyThirds {
    fn name(&self) -> &'static str {
        "greedy-thirds"
    }

    fn schedule(&mut self, corpus: &mut Corpus, _rng: &mut StdRng) -> Option<Seed> {
        self.calls += 1;
        if corpus.is_empty() || !self.calls.is_multiple_of(3) {
            return None;
        }
        let best = corpus
            .entries()
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| {
                a.energy()
                    .partial_cmp(&b.energy())
                    .expect("energy is finite")
            })
            .map(|(i, _)| i)?;
        Some(corpus.schedule_entry(best))
    }

    fn record(&mut self, corpus: &mut Corpus, feedback: &SlotFeedback<'_>) {
        corpus.record(feedback.seed, feedback.gain);
    }

    fn state(&self) -> PolicyState {
        PolicyState::Opaque(self.calls.to_le_bytes().to_vec())
    }
}

/// One builder with all three extensions registered and selected — the
/// resume path constructs this *again*, exactly like a fresh process
/// re-registering its extensions before loading a snapshot.
fn campaign() -> CampaignBuilder {
    CampaignBuilder::new()
        .backend_ctor("tutorial-boom", || {
            Box::new(BehaviouralBackend::new(boom_small()))
        })
        .scheduler_ctor("pulse", |state| Box::new(PulseScheduler::from_state(state)))
        .seed_policy_ctor("greedy-thirds", |state| {
            Box::new(GreedyThirds::from_state(state))
        })
        .workers(2)
        .seed(0xE57)
}

/// A timing-free campaign digest: identical digests mean identical
/// campaigns (coverage curve included).
fn digest(report: &ExecutorReport) {
    let stats = &report.stats;
    println!("iterations:      {}", stats.iterations);
    println!("coverage points: {}", stats.coverage());
    println!("coverage curve:  {:?}", stats.coverage_curve);
    println!(
        "corpus:          retained {} evicted {}",
        report.corpus_retained, report.corpus_evicted
    );
    for w in &report.workers {
        println!(
            "worker #{}:       {} iterations, {} points",
            w.worker,
            w.iterations,
            w.observed.points()
        );
    }
    println!("bugs ({}):", stats.bugs.len());
    for b in &stats.bugs {
        println!("  {b}");
    }
}

fn main() {
    const TOTAL: usize = 24;
    let args: Vec<String> = std::env::args().collect();
    let mode = args
        .iter()
        .position(|a| a == "--mode")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("full")
        .to_string();

    match mode.as_str() {
        "full" => {
            let report = campaign()
                .build()
                .expect("extensions registered")
                .run(TOTAL);
            digest(&report);
        }
        "resume" => {
            let path = std::env::temp_dir().join(format!(
                "dejavuzz-custom-extension-{}.snap",
                std::process::id()
            ));
            // Halt mid-campaign and checkpoint to disk.
            let (partial, _) = campaign()
                .snapshot_path(&path)
                .halt_after(9)
                .build()
                .expect("extensions registered")
                .run_snapshotting(TOTAL);
            assert!(
                partial.stats.iterations < TOTAL,
                "the halt must interrupt the run"
            );
            // A fresh builder (fresh registrations) rehydrates the custom
            // scheduler/policy/backend from the snapshot's extension ids
            // and state blobs.
            let snap =
                dejavuzz::snapshot::CampaignSnapshot::load(&path).expect("the checkpoint loads");
            assert_eq!(snap.backend, "ext:tutorial-boom");
            let report = campaign()
                .resume(snap)
                .build()
                .expect("same extensions registered on resume")
                .run(TOTAL);
            let _ = std::fs::remove_file(&path);
            digest(&report);
        }
        other => {
            eprintln!("custom_extension: unknown --mode {other:?} (expected full|resume)");
            std::process::exit(2);
        }
    }
}
