//! Umbrella package for the DejaVuzz reproduction workspace.
//!
//! This package exists to host the cross-crate integration tests in
//! `tests/` and the runnable examples in `examples/`. The actual library
//! surface lives in the `dejavuzz*` crates under `crates/`.
